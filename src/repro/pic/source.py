"""Particle sources — plasma refuelling and neutral gas puffing.

Plasma-edge simulations like BIT1's are driven systems: particles lost
to the walls or consumed by ionization are replenished by sources (core
plasma outflow, gas puff, recycling).  This module provides the two
standard source types; attach them to a simulation via
``sim.sources.append(...)`` and they fire every step between the MC and
push phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pic.constants import thermal_speed
from repro.pic.species import ParticleArrays


@dataclass
class SourceStats:
    """Cumulative injection bookkeeping."""

    injected: int = 0
    weight: float = 0.0


class VolumeSource:
    """Maxwellian volume source: inject N particles/step into a region.

    ``pair_species`` optionally injects a matching particle (same
    position) into a second species — the charge-neutral pair injection
    used for plasma refuelling (e + D⁺ born together).
    """

    def __init__(self, species: str, rate_per_step: float,
                 x_min: float, x_max: float, temperature_ev: float,
                 weight: float, pair_species: str | None = None,
                 pair_temperature_ev: float | None = None,
                 drift: tuple[float, float, float] = (0.0, 0.0, 0.0)):
        if rate_per_step < 0:
            raise ValueError("rate_per_step must be >= 0")
        if x_max <= x_min:
            raise ValueError("x_max must exceed x_min")
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.species = species
        self.rate = float(rate_per_step)
        self.x_min = x_min
        self.x_max = x_max
        self.temperature_ev = temperature_ev
        self.weight = weight
        self.pair_species = pair_species
        self.pair_temperature_ev = (pair_temperature_ev
                                    if pair_temperature_ev is not None
                                    else temperature_ev)
        self.drift = drift
        self.stats = SourceStats()

    def _count(self, rng: np.random.Generator) -> int:
        """Integer injection count; fractional rates fire stochastically."""
        base = int(self.rate)
        frac = self.rate - base
        return base + (1 if frac > 0 and rng.random() < frac else 0)

    def inject(self, populations: dict[str, ParticleArrays],
               rng: np.random.Generator) -> int:
        """Add this step's particles; returns the injected count."""
        target = populations.get(self.species)
        if target is None:
            raise KeyError(f"no species {self.species!r} to inject into")
        n = self._count(rng)
        if n == 0:
            return 0
        x = rng.uniform(self.x_min, self.x_max, n)
        vth = thermal_speed(self.temperature_ev, target.mass)
        target.add(x,
                   rng.normal(self.drift[0], vth, n),
                   rng.normal(self.drift[1], vth, n),
                   rng.normal(self.drift[2], vth, n),
                   self.weight)
        if self.pair_species is not None:
            mate = populations.get(self.pair_species)
            if mate is None:
                raise KeyError(
                    f"no pair species {self.pair_species!r} to inject into")
            vth_p = thermal_speed(self.pair_temperature_ev, mate.mass)
            mate.add(x,
                     rng.normal(0.0, vth_p, n),
                     rng.normal(0.0, vth_p, n),
                     rng.normal(0.0, vth_p, n),
                     self.weight)
        self.stats.injected += n
        self.stats.weight += n * self.weight
        return n


class WallSource:
    """Thermal influx from a wall (gas puff / recycling source).

    Particles are born just inside the chosen wall with inward-directed
    half-Maxwellian vx.
    """

    def __init__(self, species: str, rate_per_step: float,
                 wall: str, length: float, temperature_ev: float,
                 weight: float):
        if wall not in ("left", "right"):
            raise ValueError("wall must be 'left' or 'right'")
        if rate_per_step < 0:
            raise ValueError("rate_per_step must be >= 0")
        self.species = species
        self.rate = float(rate_per_step)
        self.wall = wall
        self.length = length
        self.temperature_ev = temperature_ev
        self.weight = weight
        self.stats = SourceStats()

    def inject(self, populations: dict[str, ParticleArrays],
               rng: np.random.Generator) -> int:
        target = populations.get(self.species)
        if target is None:
            raise KeyError(f"no species {self.species!r} to inject into")
        base = int(self.rate)
        frac = self.rate - base
        n = base + (1 if frac > 0 and rng.random() < frac else 0)
        if n == 0:
            return 0
        vth = thermal_speed(self.temperature_ev, target.mass)
        inward = np.abs(rng.normal(0.0, vth, n))
        if self.wall == "left":
            x = np.full(n, 1e-9)
            vx = inward
        else:
            x = np.full(n, self.length - 1e-9)
            vx = -inward
        target.add(x, vx, rng.normal(0.0, vth, n), rng.normal(0.0, vth, n),
                   self.weight)
        self.stats.injected += n
        self.stats.weight += n * self.weight
        return n
