"""Elastic electron-neutral collisions (Monte Carlo).

BIT1's MC block handles more than ionization: "the PIC method is usually
complemented by MC routines for simulation of particle collisions" (§II).
This operator implements the standard PIC-MCC elastic channel (Birdsall
[37]): each electron scatters off the local neutral background with
probability ``p = n_D(x)·σv·dt``; a scattering event redraws the
velocity *direction* isotropically while preserving the speed (electron
energy loss to a heavy neutral is O(m_e/m_D), neglected).

The invariants the tests pin: per-particle kinetic energy is exactly
conserved, particle counts never change, and an anisotropic beam
isotropises (⟨v⟩ → 0) at the analytic relaxation rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pic.deposit import deposit_density, gather_field
from repro.pic.grid import Grid1D
from repro.pic.species import ParticleArrays


@dataclass
class ElasticStats:
    """Per-step bookkeeping."""

    candidates: int = 0
    scattered: int = 0
    mean_probability: float = 0.0


class ElasticOperator:
    """e + D → e + D elastic scattering at rate coefficient σv [m³/s]."""

    def __init__(self, rate_coefficient: float):
        if rate_coefficient < 0:
            raise ValueError("rate coefficient must be >= 0")
        self.rate = float(rate_coefficient)

    def step(self, grid: Grid1D, electrons: ParticleArrays,
             neutrals: ParticleArrays, dt: float,
             rng: np.random.Generator) -> ElasticStats:
        """Apply one dt of elastic scattering (mutates ``electrons``)."""
        n = len(electrons)
        stats = ElasticStats(candidates=n)
        if n == 0 or self.rate == 0.0 or len(neutrals) == 0:
            return stats
        n_d = deposit_density(grid, neutrals)
        local = gather_field(grid, n_d, electrons.positions())
        prob = np.clip(local * self.rate * dt, 0.0, 1.0)
        stats.mean_probability = float(prob.mean())
        hit = rng.random(n) < prob
        k = int(hit.sum())
        stats.scattered = k
        if k == 0:
            return stats
        vx = electrons.vx[:n][hit]
        vy = electrons.vy[:n][hit]
        vz = electrons.vz[:n][hit]
        speed = np.sqrt(vx**2 + vy**2 + vz**2)
        # isotropic redirection: uniform on the sphere
        mu = rng.uniform(-1.0, 1.0, k)          # cos(theta)
        phi = rng.uniform(0.0, 2.0 * np.pi, k)
        sin_theta = np.sqrt(1.0 - mu**2)
        electrons.vx[:n][hit] = speed * mu
        electrons.vy[:n][hit] = speed * sin_theta * np.cos(phi)
        electrons.vz[:n][hit] = speed * sin_theta * np.sin(phi)
        return stats


def expected_drift_decay(n_neutral: float, rate: float, dt: float,
                         steps: int) -> float:
    """Analytic test oracle: ⟨vx⟩ decay factor after ``steps``.

    Each collision fully randomises direction, so the surviving drift
    fraction is the no-collision probability ``(1 - p)^steps``.
    """
    p = n_neutral * rate * dt
    if not 0 <= p <= 1:
        raise ValueError("n*rate*dt must lie in [0, 1]")
    return float((1.0 - p) ** steps)
