"""BIT1-like 1D3V electrostatic PIC Monte Carlo code."""

from repro.pic.boris import boris_step, boris_velocity_kick, exb_drift, gyro_frequency, larmor_radius
from repro.pic.config import Bit1Config, SpeciesConfig
from repro.pic.constants import EPS0, EV, MD, ME, QE, debye_length, plasma_frequency, thermal_speed
from repro.pic.deposit import deposit_charge, deposit_density, gather_field
from repro.pic.elastic import ElasticOperator, ElasticStats, expected_drift_decay
from repro.pic.loadbalance import BalanceReport, balanced_partition, particles_per_cell, rebalance
from repro.pic.diagnostics import DiagnosticsAccumulator, DistributionSet, TimeHistory
from repro.pic.grid import Grid1D, Subdomain, decompose
from repro.pic.mcc import IonizationOperator, IonizationStats, expected_survival_fraction
from repro.pic.mover import accelerate, initial_half_kick, leapfrog_step, stream
from repro.pic.poisson import (
    electric_field,
    solve_poisson_dirichlet,
    solve_poisson_periodic,
    thomas_solve,
)
from repro.pic.simulation import Bit1Simulation, StepReport
from repro.pic.smoother import binomial_smooth, compensated_smooth
from repro.pic.source import SourceStats, VolumeSource, WallSource
from repro.pic.species import ParticleArrays, sample_maxwellian
from repro.pic.wall import AbsorbingWalls, WallFluxes

__all__ = [
    "AbsorbingWalls",
    "Bit1Config",
    "Bit1Simulation",
    "BalanceReport",
    "DiagnosticsAccumulator",
    "ElasticOperator",
    "ElasticStats",
    "DistributionSet",
    "EPS0",
    "EV",
    "Grid1D",
    "IonizationOperator",
    "IonizationStats",
    "MD",
    "ME",
    "ParticleArrays",
    "QE",
    "SpeciesConfig",
    "StepReport",
    "SourceStats",
    "Subdomain",
    "TimeHistory",
    "VolumeSource",
    "WallSource",
    "WallFluxes",
    "accelerate",
    "balanced_partition",
    "boris_step",
    "boris_velocity_kick",
    "binomial_smooth",
    "compensated_smooth",
    "debye_length",
    "decompose",
    "deposit_charge",
    "deposit_density",
    "electric_field",
    "exb_drift",
    "expected_drift_decay",
    "expected_survival_fraction",
    "gather_field",
    "gyro_frequency",
    "initial_half_kick",
    "larmor_radius",
    "leapfrog_step",
    "particles_per_cell",
    "plasma_frequency",
    "rebalance",
    "sample_maxwellian",
    "solve_poisson_dirichlet",
    "solve_poisson_periodic",
    "stream",
    "thermal_speed",
    "thomas_solve",
]
