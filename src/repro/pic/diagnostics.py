"""BIT1 diagnostics: profiles, distribution functions, time histories.

The ``mvflag``/``mvstep`` machinery of the input deck (§II): when
``mvflag > 0``, time-dependent diagnostics (plasma profiles and particle
angular, velocity and energy distribution functions) are accumulated
every ``mvstep`` steps and averaged over ``mvflag`` samples before being
emitted with the next ``.dat`` snapshot.

These are exactly the per-rank arrays whose storage dominates the
openPMD output's per-rank growth in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pic.constants import EV
from repro.pic.grid import Grid1D
from repro.pic.deposit import deposit_density
from repro.pic.species import ParticleArrays

#: bins per distribution function (BIT1 uses modest fixed-size tables)
DEFAULT_BINS = 64


@dataclass
class DistributionSet:
    """Averaged velocity/energy/angular distributions for one species."""

    velocity: np.ndarray
    energy: np.ndarray
    angular: np.ndarray
    samples: int

    @property
    def nbytes(self) -> int:
        return self.velocity.nbytes + self.energy.nbytes + self.angular.nbytes


class DiagnosticsAccumulator:
    """Accumulates per-species diagnostics between snapshots."""

    def __init__(self, grid: Grid1D, species_names: list[str],
                 nbins: int = DEFAULT_BINS,
                 vmax_ev: float = 50.0):
        self.grid = grid
        self.nbins = nbins
        self.vmax_ev = vmax_ev
        self.species_names = list(species_names)
        self._hists: dict[str, dict[str, np.ndarray]] = {
            name: {
                "velocity": np.zeros(nbins),
                "energy": np.zeros(nbins),
                "angular": np.zeros(nbins),
            }
            for name in species_names
        }
        self._profiles: dict[str, np.ndarray] = {
            name: np.zeros(grid.nnodes) for name in species_names
        }
        self._samples = 0

    def accumulate(self, species: dict[str, ParticleArrays]) -> None:
        """Fold one sample of every species into the running averages."""
        for name, parts in species.items():
            if name not in self._hists:
                continue
            h = self._hists[name]
            n = len(parts)
            if n:
                vx, vy, vz = parts.velocities()
                w = parts.weights()
                vmag = np.sqrt(vx**2 + vy**2 + vz**2)
                e_ev = 0.5 * parts.mass * vmag**2 / EV
                vmax = np.sqrt(2.0 * self.vmax_ev * EV / parts.mass)
                h["velocity"] += np.histogram(
                    vx, bins=self.nbins, range=(-vmax, vmax), weights=w)[0]
                h["energy"] += np.histogram(
                    e_ev, bins=self.nbins, range=(0.0, self.vmax_ev),
                    weights=w)[0]
                vperp = np.sqrt(vy**2 + vz**2)
                angle = np.arctan2(vperp, vx)
                h["angular"] += np.histogram(
                    angle, bins=self.nbins, range=(0.0, np.pi), weights=w)[0]
                self._profiles[name] += deposit_density(self.grid, parts)
        self._samples += 1

    @property
    def samples(self) -> int:
        return self._samples

    def snapshot(self, reset: bool = True) -> dict[str, DistributionSet]:
        """Averaged distributions per species; optionally reset."""
        out: dict[str, DistributionSet] = {}
        denom = max(self._samples, 1)
        for name, h in self._hists.items():
            out[name] = DistributionSet(
                velocity=h["velocity"] / denom,
                energy=h["energy"] / denom,
                angular=h["angular"] / denom,
                samples=self._samples,
            )
        if reset:
            self.reset()
        return out

    def profiles(self, reset: bool = False) -> dict[str, np.ndarray]:
        denom = max(self._samples, 1)
        out = {name: p / denom for name, p in self._profiles.items()}
        if reset:
            self.reset()
        return out

    def reset(self) -> None:
        for h in self._hists.values():
            for arr in h.values():
                arr[:] = 0.0
        for p in self._profiles.values():
            p[:] = 0.0
        self._samples = 0


@dataclass
class TimeHistory:
    """"Time history of the total particle number" (§III-B)."""

    steps: list[int] = field(default_factory=list)
    counts: dict[str, list[float]] = field(default_factory=dict)

    def record(self, step: int, species: dict[str, ParticleArrays]) -> None:
        self.steps.append(step)
        for name, parts in species.items():
            self.counts.setdefault(name, []).append(parts.total_weight())

    def series(self, name: str) -> np.ndarray:
        return np.asarray(self.counts.get(name, ()), dtype=np.float64)

    def as_text(self) -> str:
        """Formatted history table (the original ``history.dat`` content)."""
        names = sorted(self.counts)
        lines = ["# step " + " ".join(names)]
        for i, step in enumerate(self.steps):
            row = " ".join(f"{self.counts[n][i]:.6e}" for n in names)
            lines.append(f"{step} {row}")
        return "\n".join(lines) + "\n"
