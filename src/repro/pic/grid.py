"""The 1-D spatial grid and its domain decomposition.

BIT1 simulates "1D magnetic flux tubes" (§II): a single spatial axis of
``ncells`` cells over ``length`` metres, block-decomposed over MPI ranks.
Grid quantities (densities, potential, field) live on ``ncells + 1``
nodes; CIC weighting interpolates between nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require_positive


@dataclass(frozen=True)
class Grid1D:
    """Uniform 1-D grid."""

    ncells: int
    length: float

    def __post_init__(self) -> None:
        require_positive("ncells", self.ncells)
        require_positive("length", self.length)

    @property
    def dx(self) -> float:
        return self.length / self.ncells

    @property
    def nnodes(self) -> int:
        return self.ncells + 1

    def node_positions(self) -> np.ndarray:
        return np.linspace(0.0, self.length, self.nnodes)

    def cell_centers(self) -> np.ndarray:
        return (np.arange(self.ncells) + 0.5) * self.dx

    def cell_of(self, x: np.ndarray) -> np.ndarray:
        """Cell index of each position (clipped into the domain)."""
        idx = np.floor(np.asarray(x) / self.dx).astype(np.int64)
        return np.clip(idx, 0, self.ncells - 1)


@dataclass(frozen=True)
class Subdomain:
    """One rank's slice of the grid."""

    rank: int
    cell_start: int
    cell_stop: int
    dx: float

    @property
    def ncells(self) -> int:
        return self.cell_stop - self.cell_start

    @property
    def x_min(self) -> float:
        return self.cell_start * self.dx

    @property
    def x_max(self) -> float:
        return self.cell_stop * self.dx

    def contains(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        return (x >= self.x_min) & (x < self.x_max)


def decompose(grid: Grid1D, nranks: int) -> list[Subdomain]:
    """Block-decompose the grid, remainder cells to the low ranks."""
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if nranks > grid.ncells:
        raise ValueError(
            f"cannot decompose {grid.ncells} cells over {nranks} ranks"
        )
    base, extra = divmod(grid.ncells, nranks)
    out = []
    start = 0
    for r in range(nranks):
        stop = start + base + (1 if r < extra else 0)
        out.append(Subdomain(rank=r, cell_start=start, cell_stop=stop,
                             dx=grid.dx))
        start = stop
    return out
