"""Particle-to-grid interpolation (CIC charge/density deposition).

Phase 1 of the PIC cycle (§II): "plasma density calculation using
particle-to-grid interpolation".  First-order cloud-in-cell weighting
onto grid nodes, fully vectorised with one ``np.bincount`` over the
concatenated left/right node contributions — bincount accumulates its
input sequentially, so the result is bit-identical to the classic
``np.add.at`` pair while avoiding its unbuffered-ufunc overhead.
"""

from __future__ import annotations

import numpy as np

from repro.pic.grid import Grid1D
from repro.pic.species import ParticleArrays


def deposit_density(grid: Grid1D, particles: ParticleArrays) -> np.ndarray:
    """Number density on grid nodes [m^-3] from CIC deposition.

    Each particle of weight w contributes w×(1−f) to its left node and
    w×f to the right node, where f is the fractional cell position.
    Node volumes are dx (half at the domain ends), so total weight is
    conserved: ``sum(density * volume) == sum(weights)``.
    """
    x = particles.positions()
    if len(x) == 0:
        return np.zeros(grid.nnodes)
    w = particles.weights()
    xi = x / grid.dx
    left = np.floor(xi).astype(np.int64)
    left = np.clip(left, 0, grid.ncells - 1)
    frac = xi - left
    # one concatenated bincount: all left-node contributions land
    # before any right-node ones, matching the accumulation order of
    # np.add.at(density, left, ...) followed by np.add.at(..., left+1)
    density = np.bincount(
        np.concatenate([left, left + 1]),
        weights=np.concatenate([w * (1.0 - frac), w * frac]),
        minlength=grid.nnodes)
    volume = np.full(grid.nnodes, grid.dx)
    volume[0] = volume[-1] = grid.dx / 2.0
    return density / volume


def deposit_charge(grid: Grid1D, species: list[ParticleArrays]) -> np.ndarray:
    """Net charge density [C/m^3] from all species."""
    rho = np.zeros(grid.nnodes)
    for sp in species:
        if sp.charge != 0.0:
            rho += sp.charge * deposit_density(grid, sp)
    return rho


def gather_field(grid: Grid1D, field: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Grid-to-particle interpolation (the transpose of CIC deposit)."""
    field = np.asarray(field)
    if field.shape != (grid.nnodes,):
        raise ValueError(
            f"field must live on the {grid.nnodes} nodes, got {field.shape}"
        )
    x = np.asarray(x)
    xi = x / grid.dx
    left = np.clip(np.floor(xi).astype(np.int64), 0, grid.ncells - 1)
    frac = xi - left
    return field[left] * (1.0 - frac) + field[left + 1] * frac
