"""Monte Carlo collisions — phase 4 of the PIC cycle.

"Addressing particle collisions and wall interactions with a MC
technique" (§II).  The paper's use case is electron-impact ionization of
neutrals:  e + D → 2e + D⁺, with the neutral density obeying
∂n/∂t = −n·n_e·R  (§III-C), where R is the ionization rate coefficient.

The implementation samples each neutral's ionization probability
``p = n_e(x) · R · dt`` against the *local* CIC-gathered electron
density, removes ionized neutrals, and spawns an ion (inheriting the
neutral's velocity) plus a secondary electron sampled from the local
electron temperature.  The exponential decay law is an exact invariant
of this scheme in the homogeneous limit — the property tests check it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pic.constants import thermal_speed
from repro.pic.deposit import deposit_density, gather_field
from repro.pic.grid import Grid1D
from repro.pic.species import ParticleArrays


@dataclass
class IonizationStats:
    """Per-step bookkeeping of the MC ionization operator."""

    candidates: int = 0
    ionized: int = 0
    mean_probability: float = 0.0


class IonizationOperator:
    """e + D → 2e + D⁺ at rate coefficient R [m³/s]."""

    def __init__(self, rate_coefficient: float,
                 secondary_temperature_ev: float = 1.0):
        if rate_coefficient < 0:
            raise ValueError("rate coefficient must be >= 0")
        self.rate = float(rate_coefficient)
        self.secondary_temperature_ev = float(secondary_temperature_ev)

    def step(self, grid: Grid1D, electrons: ParticleArrays,
             ions: ParticleArrays, neutrals: ParticleArrays,
             dt: float, rng: np.random.Generator) -> IonizationStats:
        """Apply one dt of ionization; mutates all three species."""
        n_neutral = len(neutrals)
        stats = IonizationStats(candidates=n_neutral)
        if n_neutral == 0 or self.rate == 0.0 or len(electrons) == 0:
            return stats
        ne = deposit_density(grid, electrons)
        ne_local = gather_field(grid, ne, neutrals.positions())
        prob = np.clip(ne_local * self.rate * dt, 0.0, 1.0)
        stats.mean_probability = float(prob.mean())
        hit = rng.random(n_neutral) < prob
        stats.ionized = int(hit.sum())
        if stats.ionized == 0:
            return stats
        converted = neutrals.extract(hit)
        # the ion inherits the neutral's full phase-space state
        ions.add_dict(converted)
        # the secondary electron is born thermal at the ionization site
        vth = thermal_speed(self.secondary_temperature_ev, electrons.mass)
        k = stats.ionized
        electrons.add(
            converted["x"],
            rng.normal(0.0, vth, k),
            rng.normal(0.0, vth, k),
            rng.normal(0.0, vth, k),
            converted["weight"],
        )
        return stats


def expected_survival_fraction(ne: float, rate: float, dt: float,
                               steps: int) -> float:
    """Analytic neutral survival for homogeneous plasma (test oracle).

    Per-step survival is (1 − ne·R·dt); over many steps this approaches
    exp(−ne·R·t), the paper's ∂n/∂t = −n·n_e·R law.
    """
    p = ne * rate * dt
    if not 0 <= p <= 1:
        raise ValueError("ne*R*dt must be within [0, 1] for the MC scheme")
    return float((1.0 - p) ** steps)
