"""The BIT1 simulation driver: the five-phase PIC-MC cycle + I/O hooks.

Runs the full cycle of §II — deposit, smooth, field solve, MC collisions
and particle push — SPMD over the virtual communicator's ranks, with the
paper's use case (§III-C) available as a preset: unbounded unmagnetised
plasma of electrons, D⁺ ions and D neutrals, ionization only, field
solver and smoother disabled.

I/O is pluggable: writer objects (the original stdio writer or the
openPMD adaptor from :mod:`repro.io_adaptor`) receive diagnostic
snapshots every ``datfile`` steps and checkpoints every ``dmpstep``
steps, exactly the cadence the paper benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.mpi.comm import VirtualComm
from repro.pic.config import Bit1Config
from repro.pic.deposit import deposit_charge, deposit_density
from repro.pic.diagnostics import DiagnosticsAccumulator, TimeHistory
from repro.pic.grid import Grid1D, Subdomain, decompose
from repro.pic.elastic import ElasticOperator
from repro.pic.mcc import IonizationOperator
from repro.pic.boris import boris_step
from repro.pic.mover import leapfrog_step
from repro.pic.poisson import electric_field, solve_poisson_dirichlet, solve_poisson_periodic
from repro.pic.smoother import binomial_smooth
from repro.pic.species import ParticleArrays, sample_maxwellian
from repro.pic.wall import AbsorbingWalls
from repro.util.rng import RngRegistry


class OutputWriter(Protocol):
    """What the simulation expects from an I/O adaptor."""

    def write_diagnostics(self, sim: "Bit1Simulation", step: int) -> None: ...

    def write_checkpoint(self, sim: "Bit1Simulation", step: int) -> None: ...

    def finalize(self, sim: "Bit1Simulation") -> None: ...


@dataclass
class StepReport:
    """What one ``step()`` call did (for tests and examples)."""

    step: int
    ionized: int
    migrated: int
    wall_absorbed: int


class Bit1Simulation:
    """One BIT1 run over a virtual communicator."""

    def __init__(self, config: Bit1Config, comm: VirtualComm | None = None,
                 writers: Sequence[OutputWriter] = (),
                 rng: RngRegistry | None = None):
        self.config = config
        self.comm = comm or VirtualComm(1, 1)
        self.writers = list(writers)
        self.rng = rng or RngRegistry(config.seed)
        self.grid = Grid1D(config.ncells, config.length)
        self.subdomains: list[Subdomain] = decompose(self.grid, self.comm.size)
        #: particles[rank][species_name]
        self.particles: list[dict[str, ParticleArrays]] = []
        self.step_index = 0
        self.history = TimeHistory()
        self.diagnostics = DiagnosticsAccumulator(
            self.grid, [s.name for s in config.species])
        self.walls = AbsorbingWalls(config.length, recycle_neutrals=False)
        self.ionization = IonizationOperator(config.ionization_rate)
        self.elastic = (ElasticOperator(config.elastic_rate)
                        if config.elastic_rate > 0 else None)
        #: optional particle sources, applied each step on rank 0's
        #: owning subdomain (see repro.pic.source)
        self.sources: list = []
        self._load_particles()

    # -- setup -----------------------------------------------------------------

    def _load_particles(self) -> None:
        cfg = self.config
        for sub in self.subdomains:
            per_rank: dict[str, ParticleArrays] = {}
            for sp in cfg.species:
                arrays = ParticleArrays(sp.name, sp.mass, sp.charge)
                n = int(round(sp.particles_per_cell * sub.ncells))
                if n:
                    cell_volume = self.grid.dx  # 1-D: per-metre densities
                    weight = sp.density * cell_volume / max(
                        sp.particles_per_cell, 1e-300)
                    sample_maxwellian(
                        arrays, n, sub.x_min, sub.x_max,
                        sp.temperature_ev, weight,
                        generator=self.rng.get("load", sub.rank, sp.name),
                    )
                per_rank[sp.name] = arrays
            self.particles.append(per_rank)

    # -- global views ------------------------------------------------------------

    def species_names(self) -> list[str]:
        return [s.name for s in self.config.species]

    def merged_species(self) -> dict[str, ParticleArrays]:
        """All ranks' particles merged per species (diagnostics view)."""
        out: dict[str, ParticleArrays] = {}
        for sp in self.config.species:
            merged = ParticleArrays(sp.name, sp.mass, sp.charge)
            for per_rank in self.particles:
                arrays = per_rank[sp.name]
                n = len(arrays)
                if n:
                    merged.add(arrays.x[:n], arrays.vx[:n], arrays.vy[:n],
                               arrays.vz[:n], arrays.weight[:n])
            out[sp.name] = merged
        return out

    def total_count(self, species: str) -> int:
        return sum(len(pr[species]) for pr in self.particles)

    def global_density(self, species: str) -> np.ndarray:
        """Node density of one species over the whole grid."""
        total = np.zeros(self.grid.nnodes)
        for per_rank in self.particles:
            total += deposit_density(self.grid, per_rank[species])
        return total

    # -- the PIC cycle --------------------------------------------------------------

    def step(self) -> StepReport:
        cfg = self.config
        report = StepReport(step=self.step_index, ionized=0, migrated=0,
                            wall_absorbed=0)

        # Phases 1-3: deposit → smooth → field solve (optional in the
        # paper's use case).
        if cfg.field_solver:
            rho = np.zeros(self.grid.nnodes)
            for per_rank in self.particles:
                rho += deposit_charge(self.grid, list(per_rank.values()))
            if cfg.smoothing:
                rho = binomial_smooth(rho, 1,
                                      periodic=cfg.boundary == "periodic")
            if cfg.boundary == "periodic":
                phi = solve_poisson_periodic(self.grid, rho)
            else:
                phi = solve_poisson_dirichlet(self.grid, rho)
            efield = electric_field(self.grid, phi,
                                    periodic=cfg.boundary == "periodic")
        else:
            efield = np.zeros(self.grid.nnodes)

        # Phase 4: Monte Carlo collisions (ionization + elastic), per rank.
        for sub, per_rank in zip(self.subdomains, self.particles):
            if "D" in per_rank and "e" in per_rank and "D+" in per_rank:
                stats = self.ionization.step(
                    self.grid, per_rank["e"], per_rank["D+"], per_rank["D"],
                    cfg.dt, self.rng.get("mcc", sub.rank))
                report.ionized += stats.ionized
            if self.elastic is not None and "D" in per_rank and "e" in per_rank:
                self.elastic.step(self.grid, per_rank["e"], per_rank["D"],
                                  cfg.dt, self.rng.get("elastic", sub.rank))

        # sources (refuelling / gas puff), applied on the owning rank
        for source in self.sources:
            x_probe = getattr(source, "x_min", None)
            if x_probe is None:  # wall sources attach at the domain ends
                x_probe = 1e-9 if source.wall == "left" else                     self.config.length - 1e-9
            owner = 0
            for sub in self.subdomains:
                if sub.x_min <= x_probe < sub.x_max:
                    owner = sub.rank
                    break
            source.inject(self.particles[owner],
                          self.rng.get("source", id(source) % 4096))

        # Phase 5: push particles, then handle boundaries and migration.
        periodic = cfg.boundary == "periodic"
        magnetised = any(b != 0.0 for b in cfg.magnetic_field)
        for per_rank in self.particles:
            for arrays in per_rank.values():
                if magnetised:
                    boris_step(self.grid, arrays, efield,
                               cfg.magnetic_field, cfg.dt,
                               periodic=periodic)
                else:
                    leapfrog_step(self.grid, arrays, efield, cfg.dt,
                                  periodic=periodic)
        if not periodic:
            for per_rank in self.particles:
                for name, arrays in per_rank.items():
                    report.wall_absorbed += self.walls.apply(
                        arrays, self.rng.get("wall"),
                        is_neutral=(name == "D"))
        report.migrated = self._migrate()

        # time-dependent diagnostics (mvflag/mvstep machinery)
        if cfg.mvflag > 0 and self.step_index % cfg.mvstep == 0:
            self.diagnostics.accumulate(self.merged_species())
        self.history.record(self.step_index,
                            {n: self._species_proxy(n)
                             for n in self.species_names()})

        self.step_index += 1
        return report

    def _species_proxy(self, name: str) -> ParticleArrays:
        """Lightweight merged view for counting (no copies of velocities)."""
        proxy = ParticleArrays(name, 1.0, 0.0)
        for per_rank in self.particles:
            arrays = per_rank[name]
            n = len(arrays)
            if n:
                proxy.add(arrays.x[:n], 0.0, 0.0, 0.0, arrays.weight[:n])
        return proxy

    def _migrate(self) -> int:
        """Move particles to the rank owning their new position."""
        if self.comm.size == 1:
            return 0
        moved = 0
        starts = np.array([s.x_min for s in self.subdomains])
        for sub, per_rank in zip(self.subdomains, self.particles):
            for name, arrays in per_rank.items():
                n = len(arrays)
                if n == 0:
                    continue
                x = arrays.x[:n]
                outside = ~sub.contains(x)
                if not outside.any():
                    continue
                leavers = arrays.extract(outside)
                dest = np.searchsorted(starts, leavers["x"], side="right") - 1
                dest = np.clip(dest, 0, self.comm.size - 1)
                moved += len(dest)
                for r in np.unique(dest):
                    sel = dest == r
                    self.particles[int(r)][name].add_dict(
                        {k: v[sel] for k, v in leavers.items()})
        return moved

    # -- run loop with output events ----------------------------------------------------

    def run(self, nsteps: int | None = None) -> None:
        """Advance until ``last_step`` (or ``nsteps`` more), firing I/O."""
        target = (self.step_index + nsteps if nsteps is not None
                  else self.config.last_step)
        target = min(target, self.config.last_step)
        cfg = self.config
        while self.step_index < target:
            self.step()
            if self.step_index % cfg.datfile == 0:
                for w in self.writers:
                    w.write_diagnostics(self, self.step_index)
            if self.step_index % cfg.dmpstep == 0:
                for w in self.writers:
                    w.write_checkpoint(self, self.step_index)
        if self.step_index >= cfg.last_step:
            # "last_step marks the time step at which the code concludes,
            # saving the present state on the disk"
            for w in self.writers:
                w.write_checkpoint(self, self.step_index)
                w.finalize(self)

    # -- checkpoint state ------------------------------------------------------------------

    def state_arrays(self, rank: int) -> dict[str, dict[str, np.ndarray]]:
        """Per-species phase-space arrays for one rank (checkpoint set)."""
        out = {}
        for name, arrays in self.particles[rank].items():
            n = len(arrays)
            out[name] = {
                "x": arrays.x[:n].copy(),
                "vx": arrays.vx[:n].copy(),
                "vy": arrays.vy[:n].copy(),
                "vz": arrays.vz[:n].copy(),
                "weight": arrays.weight[:n].copy(),
            }
        return out

    def restore_state(self, rank: int,
                      state: dict[str, dict[str, np.ndarray]]) -> None:
        """Replace one rank's particles from a checkpoint set."""
        for sp in self.config.species:
            arrays = ParticleArrays(sp.name, sp.mass, sp.charge)
            if sp.name in state:
                arrays.add_dict(state[sp.name])
            self.particles[rank][sp.name] = arrays
