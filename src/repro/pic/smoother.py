"""Density smoothing — phase 2 of the PIC cycle.

"A density smoothing process to eliminate spurious frequencies" (§II):
the classic binomial (1-2-1)/4 digital filter, applied zero or more
passes.  Endpoints use one-sided weights so the filter conserves the
integral of the smoothed quantity on a uniform grid.
"""

from __future__ import annotations

import numpy as np


def binomial_smooth(values: np.ndarray, passes: int = 1,
                    periodic: bool = False) -> np.ndarray:
    """Apply the 1-2-1 binomial filter ``passes`` times."""
    if passes < 0:
        raise ValueError("passes must be >= 0")
    out = np.asarray(values, dtype=np.float64).copy()
    if out.ndim != 1:
        raise ValueError("binomial_smooth expects a 1-D array")
    if len(out) < 3 or passes == 0:
        return out
    for _ in range(passes):
        if periodic:
            out = 0.25 * np.roll(out, 1) + 0.5 * out + 0.25 * np.roll(out, -1)
        else:
            smoothed = np.empty_like(out)
            smoothed[1:-1] = 0.25 * out[:-2] + 0.5 * out[1:-1] + 0.25 * out[2:]
            # one-sided ends: keep the boundary value's share local
            smoothed[0] = 0.75 * out[0] + 0.25 * out[1]
            smoothed[-1] = 0.75 * out[-1] + 0.25 * out[-2]
            out = smoothed
    return out


def compensated_smooth(values: np.ndarray, periodic: bool = False) -> np.ndarray:
    """Binomial pass + compensation step (Birdsall & Langdon App. C).

    A (1-2-1) pass followed by a (-1, 6, -1)/4 compensator, flattening
    the filter's response at long wavelengths while still killing the
    Nyquist mode.
    """
    smoothed = binomial_smooth(values, 1, periodic=periodic)
    out = smoothed.copy()
    if len(out) >= 3:
        if periodic:
            out = (-0.25 * np.roll(smoothed, 1) + 1.5 * smoothed
                   - 0.25 * np.roll(smoothed, -1))
        else:
            out[1:-1] = (-0.25 * smoothed[:-2] + 1.5 * smoothed[1:-1]
                         - 0.25 * smoothed[2:])
    return out
