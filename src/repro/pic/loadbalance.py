"""Particle load balancing — the paper's future-work item (§VI).

"Future research can enhance BIT1's capabilities by prioritizing …
particle load balancing."  In an ionization run the particle population
shifts (neutrals convert to electron/ion pairs wherever n_e is high), so
a static block decomposition drifts out of balance.  This module
repartitions the 1-D grid so every rank owns a contiguous cell range
with approximately equal particle counts, and migrates the particles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pic.grid import Subdomain


@dataclass(frozen=True)
class BalanceReport:
    """Before/after view of one rebalancing pass."""

    before_max: int
    before_mean: float
    after_max: int
    after_mean: float
    migrated: int

    @property
    def before_imbalance(self) -> float:
        """max/mean particle count before (1.0 = perfect)."""
        return self.before_max / max(self.before_mean, 1e-300)

    @property
    def after_imbalance(self) -> float:
        return self.after_max / max(self.after_mean, 1e-300)


def particles_per_cell(sim) -> np.ndarray:
    """Total particle count per grid cell across all ranks/species."""
    counts = np.zeros(sim.grid.ncells, dtype=np.int64)
    for per_rank in sim.particles:
        for arrays in per_rank.values():
            cells = sim.grid.cell_of(arrays.positions())
            np.add.at(counts, cells, 1)
    return counts


def balanced_partition(cell_counts: np.ndarray, nranks: int) -> list[tuple[int, int]]:
    """Contiguous cell ranges with ~equal particle counts.

    Greedy prefix-sum splitting: rank r gets cells up to where the
    cumulative count first reaches (r+1)/nranks of the total.  Every rank
    keeps at least one cell.
    """
    ncells = len(cell_counts)
    if nranks < 1 or nranks > ncells:
        raise ValueError(f"cannot split {ncells} cells over {nranks} ranks")
    cumulative = np.cumsum(cell_counts, dtype=np.float64)
    total = cumulative[-1]
    if total == 0:
        base, extra = divmod(ncells, nranks)
        bounds, start = [], 0
        for r in range(nranks):
            stop = start + base + (1 if r < extra else 0)
            bounds.append((start, stop))
            start = stop
        return bounds
    targets = total * (np.arange(1, nranks) / nranks)
    cuts = np.searchsorted(cumulative, targets, side="left") + 1
    # enforce at least one cell per rank, monotone, within bounds
    cuts = np.clip(cuts, 1, ncells - 1)
    for i in range(1, len(cuts)):
        cuts[i] = max(cuts[i], cuts[i - 1] + 1)
    cuts = np.minimum(cuts, ncells - (nranks - 1 - np.arange(len(cuts))))
    edges = [0, *cuts.tolist(), ncells]
    return [(edges[i], edges[i + 1]) for i in range(nranks)]


def rebalance(sim) -> BalanceReport:
    """Repartition ``sim``'s subdomains by particle count and migrate.

    Mutates the simulation in place; physics is unaffected (particles
    only change owners, never state).
    """
    nranks = sim.comm.size
    per_rank_before = np.array(
        [sum(len(a) for a in pr.values()) for pr in sim.particles])
    counts = particles_per_cell(sim)
    bounds = balanced_partition(counts, nranks)
    sim.subdomains = [
        Subdomain(rank=r, cell_start=a, cell_stop=b, dx=sim.grid.dx)
        for r, (a, b) in enumerate(bounds)
    ]
    migrated = sim._migrate()
    per_rank_after = np.array(
        [sum(len(a) for a in pr.values()) for pr in sim.particles])
    return BalanceReport(
        before_max=int(per_rank_before.max()),
        before_mean=float(per_rank_before.mean()),
        after_max=int(per_rank_after.max()),
        after_mean=float(per_rank_after.mean()),
        migrated=migrated,
    )
