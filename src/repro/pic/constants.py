"""Physical constants (SI) used by the PIC-MC code."""

from __future__ import annotations

#: elementary charge [C]
QE = 1.602176634e-19
#: electron mass [kg]
ME = 9.1093837015e-31
#: proton mass [kg]
MP = 1.67262192369e-27
#: deuterium mass [kg] (2.0141 u)
MD = 3.3435837724e-27
#: vacuum permittivity [F/m]
EPS0 = 8.8541878128e-12
#: Boltzmann constant [J/K]
KB = 1.380649e-23
#: 1 eV in Joules
EV = QE


def thermal_speed(temperature_ev: float, mass: float) -> float:
    """RMS thermal speed per axis, sqrt(kT/m), with T in eV."""
    if temperature_ev < 0:
        raise ValueError("temperature must be non-negative")
    return (temperature_ev * EV / mass) ** 0.5


def plasma_frequency(density: float, mass: float = ME,
                     charge: float = QE) -> float:
    """Plasma frequency ω_p = sqrt(n q² / (ε₀ m)) [rad/s]."""
    if density < 0:
        raise ValueError("density must be non-negative")
    return (density * charge * charge / (EPS0 * mass)) ** 0.5


def debye_length(density: float, temperature_ev: float) -> float:
    """Electron Debye length [m]."""
    if density <= 0:
        raise ValueError("density must be positive")
    return (EPS0 * temperature_ev * EV / (density * QE * QE)) ** 0.5
