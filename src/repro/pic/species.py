"""Particle storage: structure-of-arrays per species, per rank.

BIT1 is 1D3V: one spatial coordinate, three velocity components (§II).
Particles live in growable numpy arrays (the memory-layout optimisation
of Tskhakaya et al. [3] — contiguous per-component arrays) with an
explicit live count so deletions are O(1) swaps, not reallocations.
"""

from __future__ import annotations

import numpy as np

from repro.pic.constants import thermal_speed


class ParticleArrays:
    """SoA particle container for one species on one rank."""

    __slots__ = ("name", "mass", "charge", "x", "vx", "vy", "vz", "weight",
                 "_n")

    def __init__(self, name: str, mass: float, charge: float,
                 capacity: int = 1024):
        self.name = name
        self.mass = float(mass)
        self.charge = float(charge)
        capacity = max(int(capacity), 16)
        self.x = np.zeros(capacity)
        self.vx = np.zeros(capacity)
        self.vy = np.zeros(capacity)
        self.vz = np.zeros(capacity)
        self.weight = np.zeros(capacity)
        self._n = 0

    # -- size management -----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        return len(self.x)

    def _ensure(self, extra: int) -> None:
        need = self._n + extra
        if need <= self.capacity:
            return
        new_cap = max(need, self.capacity * 2)
        for field in ("x", "vx", "vy", "vz", "weight"):
            old = getattr(self, field)
            new = np.zeros(new_cap)
            new[: self._n] = old[: self._n]
            setattr(self, field, new)

    # -- views over the live particles ------------------------------------------

    @property
    def live(self) -> dict[str, np.ndarray]:
        n = self._n
        return {"x": self.x[:n], "vx": self.vx[:n], "vy": self.vy[:n],
                "vz": self.vz[:n], "weight": self.weight[:n]}

    def positions(self) -> np.ndarray:
        return self.x[: self._n]

    def velocities(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self._n
        return self.vx[:n], self.vy[:n], self.vz[:n]

    def weights(self) -> np.ndarray:
        return self.weight[: self._n]

    # -- mutation ------------------------------------------------------------------

    def add(self, x, vx, vy, vz, weight=1.0) -> None:
        """Append particles (arrays broadcast to a common length)."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        k = len(x)
        self._ensure(k)
        n = self._n
        self.x[n:n + k] = x
        self.vx[n:n + k] = np.broadcast_to(np.asarray(vx, dtype=np.float64), (k,))
        self.vy[n:n + k] = np.broadcast_to(np.asarray(vy, dtype=np.float64), (k,))
        self.vz[n:n + k] = np.broadcast_to(np.asarray(vz, dtype=np.float64), (k,))
        self.weight[n:n + k] = np.broadcast_to(
            np.asarray(weight, dtype=np.float64), (k,))
        self._n = n + k

    def remove(self, mask: np.ndarray) -> int:
        """Delete particles where ``mask`` is True; returns removed count.

        Compacts by keeping the survivors (order not preserved — PIC
        codes don't need particle order, and compaction keeps the arrays
        dense, per BIT1's memory-management optimisation).
        """
        n = self._n
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (n,):
            raise ValueError(f"mask must cover the {n} live particles")
        keep = ~mask
        k = int(keep.sum())
        for field in ("x", "vx", "vy", "vz", "weight"):
            arr = getattr(self, field)
            arr[:k] = arr[:n][keep]
        removed = n - k
        self._n = k
        return removed

    def extract(self, mask: np.ndarray) -> dict[str, np.ndarray]:
        """Remove and return the masked particles (rank migration)."""
        n = self._n
        mask = np.asarray(mask, dtype=bool)
        out = {f: getattr(self, f)[:n][mask].copy()
               for f in ("x", "vx", "vy", "vz", "weight")}
        self.remove(mask)
        return out

    def add_dict(self, parts: dict[str, np.ndarray]) -> None:
        if len(parts["x"]):
            self.add(parts["x"], parts["vx"], parts["vy"], parts["vz"],
                     parts["weight"])

    # -- physics helpers ---------------------------------------------------------------

    def kinetic_energy(self) -> float:
        """Total kinetic energy of the live particles [J]."""
        vx, vy, vz = self.velocities()
        w = self.weights()
        return float(0.5 * self.mass * np.sum(w * (vx**2 + vy**2 + vz**2)))

    def total_weight(self) -> float:
        return float(self.weights().sum())


def sample_maxwellian(arrays: ParticleArrays, n: int,
                      x_min: float, x_max: float,
                      temperature_ev: float, weight: float,
                      rng: np.ndarray | None = None,
                      drift: tuple[float, float, float] = (0.0, 0.0, 0.0),
                      generator=None) -> None:
    """Load ``n`` particles uniform in space, Maxwellian in velocity."""
    gen = generator if generator is not None else np.random.default_rng(0)
    vth = thermal_speed(temperature_ev, arrays.mass)
    x = gen.uniform(x_min, x_max, n)
    v = gen.normal(0.0, vth, (3, n))
    arrays.add(x, v[0] + drift[0], v[1] + drift[1], v[2] + drift[2], weight)
