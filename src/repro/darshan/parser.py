"""Text rendering of Darshan logs — the ``darshan-parser`` equivalent.

``darshan-parser --total`` style output: job header, per-module counter
totals, and per-file records.  Useful for eyeballing a run and for the
documentation examples; the numeric analysis goes through
:mod:`repro.darshan.report` instead.
"""

from __future__ import annotations

from repro.darshan.counters import all_counter_names
from repro.darshan.log import DarshanLog
from repro.util.units import format_size


def parse_totals(log: DarshanLog) -> dict[str, float]:
    """All counters summed over ranks, fully-qualified names."""
    out: dict[str, float] = {}
    for mod in log.modules.values():
        for name in all_counter_names(mod.name):
            if name in mod.counters:
                out[f"total_{name}"] = float(mod.counters[name].sum())
    return out


def render_totals(log: DarshanLog) -> str:
    """``darshan-parser --total``-style text dump."""
    lines = [
        "# darshan log version: 3.41 (repro synthetic)",
        f"# exe: {log.exe}",
        f"# jobid: {log.jobid}",
        f"# nprocs: {log.nprocs}",
        f"# run time: {log.runtime_seconds:.6f}",
        f"# machine: {log.machine}",
        f"# config: {log.config}",
        "#",
    ]
    for name, value in parse_totals(log).items():
        if name.endswith("_TIME"):
            lines.append(f"{name}: {value:.6f}")
        else:
            lines.append(f"{name}: {value:.0f}")
    return "\n".join(lines)


def render_file_records(log: DarshanLog, limit: int | None = None) -> str:
    """Per-file record dump, largest writers first."""
    lines = [
        "# <path> <opens> <writes> <fsyncs> <bytes_written> <cumulative_time_s>",
    ]
    records = sorted(log.files, key=lambda r: -r.bytes_written)
    if limit is not None:
        records = records[:limit]
    for rec in records:
        lines.append(
            f"{rec.path} {rec.opens:.0f} {rec.writes:.0f} {rec.fsyncs:.0f} "
            f"{rec.bytes_written:.0f} ({format_size(rec.bytes_written)}) "
            f"{rec.cumulative_time:.6f}"
        )
    return "\n".join(lines)


def render(log: DarshanLog, file_limit: int = 20) -> str:
    """Full report: totals plus the top file records."""
    return render_totals(log) + "\n#\n" + render_file_records(log, file_limit)
