"""Derived performance metrics from Darshan logs.

The quantities the paper extracts from its Darshan 3.4.2 logs:

* **write throughput** — Darshan's ``agg_perf_by_slowest`` estimator:
  total bytes moved divided by the slowest rank's cumulative I/O time.
  This is the y-axis of Figs. 2, 3, 4, 6 and 7.
* **average per-process cost split** — mean seconds per process spent in
  reads, metadata and writes (Fig. 5; the famous 17.868 s → 0.014 s
  metadata collapse).
* **file statistics** — count / average size / max size of the files a
  job wrote (Table II), computed from the filesystem the job ran on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.darshan.log import DarshanLog
from repro.util.units import format_size, to_gib


@dataclass(frozen=True)
class CostSplit:
    """Average per-process I/O seconds by category (Fig. 5)."""

    read_seconds: float
    meta_seconds: float
    write_seconds: float

    @property
    def total(self) -> float:
        return self.read_seconds + self.meta_seconds + self.write_seconds

    def normalized(self) -> "CostSplit":
        """Scale so the largest category is 1.0 (the figure is normalized)."""
        peak = max(self.read_seconds, self.meta_seconds, self.write_seconds)
        if peak == 0:
            return self
        return CostSplit(self.read_seconds / peak, self.meta_seconds / peak,
                         self.write_seconds / peak)


@dataclass(frozen=True)
class FileStats:
    """Table II row triple for one configuration at one node count."""

    total_files: int
    avg_size_bytes: float
    max_size_bytes: float

    def formatted(self) -> tuple[str, str, str]:
        return (str(self.total_files), format_size(self.avg_size_bytes),
                format_size(self.max_size_bytes))


def agg_perf_by_slowest(log: DarshanLog, include_meta: bool = True) -> float:
    """Darshan's job throughput estimate, bytes/s.

    ``total bytes moved / slowest rank's I/O time``.  ``include_meta``
    matches Darshan's default of charging metadata stalls to the job
    (without it, fsync-heavy workloads look misleadingly fast).
    """
    total = log.total_bytes_written() + log.total_bytes_read()
    per_rank = log.per_rank_time("F_WRITE_TIME") + log.per_rank_time("F_READ_TIME")
    if include_meta:
        per_rank = per_rank + log.per_rank_time("F_META_TIME")
    slowest = float(per_rank.max())
    if slowest <= 0:
        return 0.0
    return total / slowest


def write_throughput(log: DarshanLog, include_meta: bool = True) -> float:
    """Write-only throughput estimate, bytes/s (the paper's metric)."""
    total = log.total_bytes_written()
    per_rank = log.per_rank_time("F_WRITE_TIME")
    if include_meta:
        per_rank = per_rank + log.per_rank_time("F_META_TIME")
    slowest = float(per_rank.max())
    if slowest <= 0:
        return 0.0
    return total / slowest


def write_throughput_gib(log: DarshanLog, include_meta: bool = True) -> float:
    """Write throughput in GiB/s, as plotted in the paper."""
    return to_gib(write_throughput(log, include_meta=include_meta))


def cost_split(log: DarshanLog) -> CostSplit:
    """Average per-process read/meta/write seconds (Fig. 5)."""
    n = max(log.nprocs, 1)
    return CostSplit(
        read_seconds=float(log.per_rank_time("F_READ_TIME").sum()) / n,
        meta_seconds=float(log.per_rank_time("F_META_TIME").sum()) / n,
        write_seconds=float(log.per_rank_time("F_WRITE_TIME").sum()) / n,
    )


def avg_seconds_per_write(log: DarshanLog) -> float:
    """Mean seconds per write operation across the job (Fig. 9 metric)."""
    writes = 0.0
    time = 0.0
    for mod in log.modules.values():
        writes += mod.total(f"{mod.name}_WRITES")
        time += mod.total(f"{mod.name}_F_WRITE_TIME")
    if writes == 0:
        return 0.0
    return time / writes


def file_stats_from_sizes(sizes: np.ndarray) -> FileStats:
    """Aggregate a size array into the Table II triple."""
    sizes = np.asarray(sizes)
    if sizes.size == 0:
        return FileStats(0, 0.0, 0.0)
    return FileStats(
        total_files=int(sizes.size),
        avg_size_bytes=float(sizes.mean()),
        max_size_bytes=float(sizes.max()),
    )


def job_summary(log: DarshanLog) -> dict:
    """One-job overview (what ``darshan-job-summary`` prints up top)."""
    split = cost_split(log)
    return {
        "jobid": log.jobid,
        "exe": log.exe,
        "nprocs": log.nprocs,
        "runtime_seconds": log.runtime_seconds,
        "machine": log.machine,
        "config": log.config,
        "bytes_written": log.total_bytes_written(),
        "bytes_read": log.total_bytes_read(),
        "write_throughput_gib_s": write_throughput_gib(log),
        "avg_read_s": split.read_seconds,
        "avg_meta_s": split.meta_seconds,
        "avg_write_s": split.write_seconds,
        "files_touched": len(log.files),
    }
