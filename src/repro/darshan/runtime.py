"""Darshan runtime: per-rank, per-module, per-file I/O instrumentation.

The :class:`DarshanMonitor` is a *subscriber* on the ``repro.trace``
event spine — the same boundary real Darshan wraps with link-time
interposition — and folds every filesystem-plane event into columnar
per-rank counters, cheap enough to instrument 25600-rank virtual jobs.
It performs no timing or byte arithmetic of its own: all quantities
arrive pre-computed on the events and are only accumulated here.

Lifecycle mirrors the real tool: create a monitor per job, run the job,
then :meth:`finalize` to freeze a :class:`~repro.darshan.log.DarshanLog`
record that the parser/report tooling consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.darshan.counters import (
    BYTE_FIELDS,
    COUNT_FIELDS,
    MODULES,
    OP_TO_COUNT,
    OP_TO_TIME,
    READ_KINDS,
    SIZE_BUCKET_NAMES,
    TIME_FIELDS,
    WRITE_KINDS,
    size_bucket_index,
)
from repro.darshan.log import DarshanLog, FileRecord, ModuleRecord
from repro.trace.events import FS_LAYERS, EventBatch, IOEvent, make_event
from repro.util.scatter import scatter_add, scatter_add2

#: legacy record() op names → spine event kinds
_LEGACY_KIND = {"sync": "fsync"}

#: record()-era api strings → spine layer tags
_API_LAYER = {"STDIO": "stdio", "MPIIO": "mpiio"}


class _ModuleCounters:
    """Columnar per-rank counters for one module (POSIX or STDIO)."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.counts = {f: np.zeros(nprocs, dtype=np.float64) for f in COUNT_FIELDS}
        self.bytes = {f: np.zeros(nprocs, dtype=np.float64) for f in BYTE_FIELDS}
        self.times = {f: np.zeros(nprocs, dtype=np.float64) for f in TIME_FIELDS}
        self.size_hist = np.zeros((nprocs, len(SIZE_BUCKET_NAMES)), dtype=np.int64)


class _FileTable:
    """Columnar per-file counters, indexed directly by inode id.

    Group operations touch tens of thousands of files at once, so the
    per-file plane is numpy arrays grown on demand — the same columnar
    idiom as the virtual filesystem's inode table.  Rows are allocated
    lazily (the table only grows to the largest inode actually
    instrumented) and the growth is charged to the ``darshan`` memory
    account when one is attached.
    """

    _FIELDS = ("opens", "reads", "writes", "fsyncs",
               "bytes_read", "bytes_written", "time")

    #: unfolded registration rows tolerated before compaction — keeps
    #: residency at O(distinct files) when chunked group opens register
    #: the same paths once per rank block
    COMPACT_THRESHOLD = 65536

    def __init__(self, capacity: int = 256, account=None):
        self._cap = capacity
        self.account = account
        # registrations arrive in (possibly huge) batches from group
        # opens; they are kept as appended batches — O(1) per group —
        # and only folded into the dict when someone asks for it
        self._path_batches: list[tuple] = []
        self._path_rows = 0
        self._paths: dict[int, str] = {}
        for f in self._FIELDS:
            setattr(self, f, np.zeros(capacity))
        if account is not None:
            account.charge(capacity * len(self._FIELDS) * 8)

    def ensure(self, max_ino: int) -> None:
        if max_ino < self._cap:
            return
        new_cap = max(self._cap * 2, max_ino + 1)
        for f in self._FIELDS:
            old = getattr(self, f)
            new = np.zeros(new_cap)
            new[: self._cap] = old
            setattr(self, f, new)
        if self.account is not None:
            self.account.charge((new_cap - self._cap) * len(self._FIELDS) * 8)
        self._cap = new_cap

    def register(self, ino: int, path: str) -> None:
        self.ensure(ino)
        self._path_batches.append(((int(ino),), (path,)))
        self._path_rows += 1

    def register_batch(self, inos: np.ndarray, paths: Sequence[str]) -> None:
        if inos.size:
            self.ensure(int(inos.max()))
            self._path_batches.append((inos, paths))
            self._path_rows += len(paths)
            if self._path_rows > self.COMPACT_THRESHOLD:
                self.paths  # fold + drop the raw batches

    @property
    def paths(self) -> dict[int, str]:
        """Materialised ino → path registry (first registration wins)."""
        if self._path_batches:
            setdefault = self._paths.setdefault
            for inos, paths in self._path_batches:
                for ino, path in zip(inos, paths):
                    setdefault(int(ino), path)
            self._path_batches.clear()
            self._path_rows = 0
        return self._paths


class DarshanMonitor:
    """Runtime counter collection for one simulated job.

    ``granularity`` picks the counter resolution: ``"rank"`` (the
    default, one counter cell per MPI rank — real Darshan's layout) or
    ``"node"`` (cells binned by ``node_of_rank``, so resident counter
    state is O(nodes) for million-rank virtual jobs).  Binning changes
    only the counter axis; totals are conserved.

    ``evict_on_close=True`` folds a file's live row into a frozen
    partial record each time it closes (zeroing the row), mirroring how
    real Darshan sheds per-file state at shutdown rather than keeping
    event logs; partials are merged back at :meth:`finalize`.
    """

    def __init__(self, nprocs: int, jobid: int = 1, exe: str = "bit1",
                 granularity: str = "rank", node_of_rank=None,
                 mem_account=None, evict_on_close: bool = False):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if granularity not in ("rank", "node"):
            raise ValueError(
                f"granularity must be 'rank' or 'node', got {granularity!r}")
        self.nprocs = nprocs
        self.jobid = jobid
        self.exe = exe
        self.granularity = granularity
        if granularity == "node":
            if node_of_rank is None:
                raise ValueError("granularity='node' requires node_of_rank")
            # keep lazy maps (e.g. BlockNodeMap) as-is: indexing works
            # and materialising one would defeat its O(1) residency
            self._bin_of_rank = (node_of_rank
                                 if hasattr(node_of_rank, "max")
                                 else np.asarray(node_of_rank))
            self.nbins = int(self._bin_of_rank.max()) + 1
        else:
            self._bin_of_rank = None
            self.nbins = nprocs
        self.mem_account = mem_account
        self.evict_on_close = evict_on_close
        self._evicted: dict[int, FileRecord] = {}
        self._modules = {m: _ModuleCounters(self.nbins) for m in MODULES}
        self._files = _FileTable(account=mem_account)
        if mem_account is not None:
            per_bin = (len(COUNT_FIELDS) + len(BYTE_FIELDS)
                       + len(TIME_FIELDS) + len(SIZE_BUCKET_NAMES)) * 8
            mem_account.charge(len(MODULES) * self.nbins * per_bin)
        self._finalized: DarshanLog | None = None

    # -- registration hooks (called by the POSIX layer) ---------------------

    def register_file(self, ino: int, path: str) -> None:
        self._files.register(ino, path)

    def register_files(self, inos: np.ndarray, paths: Sequence[str]) -> None:
        self._files.register_batch(np.asarray(inos), paths)

    # -- the single folding entry point ---------------------------------------

    #: spine event kinds this subscriber folds (everything fs-plane)
    kinds = frozenset(OP_TO_TIME)

    def on_event(self, event: IOEvent) -> None:
        """Fold one spine event into the counters.

        Events arrive with ``ranks``/``nbytes``/``duration``/``n_ops``
        already broadcast to a common per-rank shape; ``inos``
        optionally attributes the op to files.
        """
        if self._finalized is not None:
            # after shutdown real Darshan no longer interposes; post-job
            # I/O (e.g. reading results back) is simply not recorded
            return
        if event.layer not in FS_LAYERS:
            return  # engine/MPI-plane events are not Darshan's to count
        mod = self._modules.get(event.api)
        if mod is None:  # unknown module: fold into POSIX
            mod = self._modules["POSIX"]
        self._fold(mod, event.kind, event.ranks, event.nbytes,
                   event.duration, event.n_ops, event.inos)

    def on_batch(self, batch: EventBatch) -> None:
        """Fold a struct-of-arrays batch without building event objects.

        Rows fold in order, so accumulation onto shared counters (the
        per-file cumulative time, most visibly) stays bit-identical to
        the equivalent sequence of scalar events.
        """
        if self._finalized is not None or batch.layer not in FS_LAYERS:
            return
        mod = self._modules.get(batch.api)
        if mod is None:
            mod = self._modules["POSIX"]
        ranks = batch.ranks
        for i, kind in enumerate(batch.kinds):
            self._fold(mod, kind, ranks, batch.nbytes[i],
                       batch.duration[i], batch.n_ops[i], batch.inos)

    def _fold(self, mod: _ModuleCounters, kind: str, ranks, nbytes,
              duration, ops_arr, inos) -> None:
        if self._bin_of_rank is not None:
            ranks = self._bin_of_rank[np.asarray(ranks)]
        count_field = OP_TO_COUNT.get(kind)
        if count_field is not None:
            scatter_add(mod.counts[count_field], ranks, ops_arr)
        time_field = OP_TO_TIME[kind]
        scatter_add(mod.times[time_field], ranks, duration)

        if kind in WRITE_KINDS:
            scatter_add(mod.bytes["BYTES_WRITTEN"], ranks, nbytes)
            per_op = nbytes / np.maximum(ops_arr, 1.0)
            buckets = size_bucket_index(per_op)
            scatter_add2(mod.size_hist, ranks, buckets,
                         ops_arr.astype(np.int64))
        elif kind in READ_KINDS:
            scatter_add(mod.bytes["BYTES_READ"], ranks, nbytes)
            per_op = nbytes / np.maximum(ops_arr, 1.0)
            buckets = size_bucket_index(per_op)
            scatter_add2(mod.size_hist, ranks, buckets,
                         ops_arr.astype(np.int64))

        if inos is not None:
            self._record_files(kind, inos, nbytes, duration, ops_arr)
            if kind == "close" and self.evict_on_close:
                self._evict(inos)

    def record(self, kind: str, ranks, nbytes, seconds, api: str,
               inos=None, n_ops=1) -> None:
        """Legacy entry point: wrap the arguments in a spine event.

        Pre-spine callers (and the Darshan unit tests) talk the old
        ``record()`` vocabulary; everything funnels through
        :meth:`on_event` so there is exactly one folding code path.
        """
        self.on_event(make_event(
            _LEGACY_KIND.get(kind, kind), ranks, nbytes=nbytes,
            duration=seconds, n_ops=n_ops, api=api,
            layer=_API_LAYER.get(api, "posix"), inos=inos))

    def _record_files(self, kind: str, inos, nbytes, seconds, ops) -> None:
        inos = np.atleast_1d(np.asarray(inos, dtype=np.int64))
        if inos.size == 0:
            return
        self._files.ensure(int(inos.max()))
        # one shared file touched by many ranks broadcasts the ino up;
        # one op per file broadcasts the metrics up — take the widest
        shape = np.broadcast_shapes(inos.shape, np.shape(nbytes))
        inos = np.broadcast_to(inos, shape)
        nbytes = np.broadcast_to(nbytes, shape)
        seconds = np.broadcast_to(seconds, shape)
        ops = np.broadcast_to(ops, shape)
        ft = self._files
        if kind in WRITE_KINDS:
            scatter_add(ft.writes, inos, ops)
            scatter_add(ft.bytes_written, inos, nbytes)
        elif kind in READ_KINDS:
            scatter_add(ft.reads, inos, ops)
            scatter_add(ft.bytes_read, inos, nbytes)
        elif kind == "fsync":
            scatter_add(ft.fsyncs, inos, ops)
        elif kind in ("open", "create"):
            scatter_add(ft.opens, inos, ops)
        scatter_add(ft.time, inos, seconds)

    def _evict(self, inos) -> None:
        """Fold live rows of just-closed files into frozen partials."""
        ft = self._files
        paths = ft.paths
        for ino in np.unique(
                np.atleast_1d(np.asarray(inos, dtype=np.int64))).tolist():
            rec = self._evicted.get(ino)
            if rec is None:
                rec = self._evicted[ino] = FileRecord(
                    path=paths.get(ino, f"<ino {ino}>"))
            rec.opens += float(ft.opens[ino])
            rec.reads += float(ft.reads[ino])
            rec.writes += float(ft.writes[ino])
            rec.fsyncs += float(ft.fsyncs[ino])
            rec.bytes_read += float(ft.bytes_read[ino])
            rec.bytes_written += float(ft.bytes_written[ino])
            rec.cumulative_time += float(ft.time[ino])
            for f in _FileTable._FIELDS:
                getattr(ft, f)[ino] = 0.0

    # -- queries used while the job runs --------------------------------------

    def total_bytes_written(self, module: str | None = None) -> float:
        mods = [self._modules[module]] if module else self._modules.values()
        return float(sum(m.bytes["BYTES_WRITTEN"].sum() for m in mods))

    def total_bytes_read(self, module: str | None = None) -> float:
        mods = [self._modules[module]] if module else self._modules.values()
        return float(sum(m.bytes["BYTES_READ"].sum() for m in mods))

    def per_rank_time(self, field: str) -> np.ndarray:
        """Per-bin cumulative time for one of the F_*_TIME fields.

        One entry per rank at ``granularity='rank'``, per node at
        ``'node'``.
        """
        out = np.zeros(self.nbins)
        for m in self._modules.values():
            out += m.times[field]
        return out

    def per_rank_io_time(self) -> np.ndarray:
        """Per-bin read+write+meta time across modules."""
        out = np.zeros(self.nbins)
        for f in TIME_FIELDS:
            out += self.per_rank_time(f)
        return out

    # -- finalization -----------------------------------------------------------

    def finalize(self, runtime_seconds: float | None = None,
                 machine: str = "", config: str = "") -> DarshanLog:
        """Freeze the counters into an immutable log record."""
        if self._finalized is not None:
            return self._finalized
        modules = {}
        for name, m in self._modules.items():
            counters: dict[str, np.ndarray] = {}
            for f, arr in m.counts.items():
                counters[f"{name}_{f}"] = arr.copy()
            for f, arr in m.bytes.items():
                counters[f"{name}_{f}"] = arr.copy()
            for f, arr in m.times.items():
                counters[f"{name}_{f}"] = arr.copy()
            for j, bname in enumerate(SIZE_BUCKET_NAMES):
                counters[f"{name}_{bname}"] = m.size_hist[:, j].astype(np.float64)
            modules[name] = ModuleRecord(name=name, counters=counters)
        ft = self._files
        files = []
        for ino, path in self._files.paths.items():
            rec = FileRecord(
                path=path,
                opens=float(ft.opens[ino]),
                reads=float(ft.reads[ino]),
                writes=float(ft.writes[ino]),
                fsyncs=float(ft.fsyncs[ino]),
                bytes_read=float(ft.bytes_read[ino]),
                bytes_written=float(ft.bytes_written[ino]),
                cumulative_time=float(ft.time[ino]),
            )
            prev = self._evicted.get(ino)
            if prev is not None:  # merge evicted partials back in
                rec.opens += prev.opens
                rec.reads += prev.reads
                rec.writes += prev.writes
                rec.fsyncs += prev.fsyncs
                rec.bytes_read += prev.bytes_read
                rec.bytes_written += prev.bytes_written
                rec.cumulative_time += prev.cumulative_time
            files.append(rec)
        if runtime_seconds is None:
            runtime_seconds = float(self.per_rank_io_time().max())
        self._finalized = DarshanLog(
            jobid=self.jobid,
            exe=self.exe,
            nprocs=self.nprocs,
            runtime_seconds=runtime_seconds,
            machine=machine,
            config=config,
            modules=modules,
            files=files,
            granularity=self.granularity,
            nbins=self.nbins,
        )
        return self._finalized
