"""DXT — Darshan eXtended Tracing.

Real Darshan's DXT modules (``DXT_POSIX``/``DXT_STDIO``) record one
segment per I/O operation — rank, offset span, and start/end timestamps
— instead of just counters.  The reproduction keeps the same data for
virtual jobs: when a :class:`DXTRecorder` is attached to the monitor,
every read/write lands one :class:`Segment` with virtual-clock
timestamps, and the renderer emits ``darshan-dxt-parser``-style text.

Tracing 25600-rank full-scale runs would produce millions of segments,
so the recorder has a bounded ring buffer (like DXT's own memory cap)
and records group operations as one segment per (contiguous) rank run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.trace.events import DATA_KINDS, IOEvent, make_event

#: spine kinds → the two-op DXT vocabulary real darshan-dxt-parser emits
_DXT_OP = {"write": "write", "read": "read",
           "collective_write": "write", "meta_append": "write"}


@dataclass(frozen=True)
class Segment:
    """One traced I/O operation."""

    module: str          # "DXT_POSIX" or "DXT_STDIO"
    kind: str            # "write" or "read"
    rank: int
    path: str
    nbytes: int
    start: float         # virtual seconds
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class DXTRecorder:
    """Bounded trace buffer, attached to a :class:`DarshanMonitor`."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.segments: deque[Segment] = deque(maxlen=capacity)
        self.dropped = 0

    def record(self, module: str, kind: str, ranks, paths, nbytes,
               starts, ends) -> None:
        """Record one (possibly group) operation as segments."""
        ranks = np.atleast_1d(np.asarray(ranks))
        nbytes = np.broadcast_to(np.asarray(nbytes), ranks.shape)
        starts = np.broadcast_to(np.asarray(starts, dtype=np.float64),
                                 ranks.shape)
        ends = np.broadcast_to(np.asarray(ends, dtype=np.float64),
                               ranks.shape)
        if isinstance(paths, str):
            paths = [paths] * len(ranks)
        for i in range(len(ranks)):
            if len(self.segments) == self.capacity:
                self.dropped += 1
            self.segments.append(Segment(
                module=module, kind=kind, rank=int(ranks[i]),
                path=paths[i], nbytes=int(nbytes[i]),
                start=float(starts[i]), end=float(ends[i]),
            ))

    # -- queries ------------------------------------------------------------

    def by_rank(self, rank: int) -> list[Segment]:
        return [s for s in self.segments if s.rank == rank]

    def by_path(self, path: str) -> list[Segment]:
        return [s for s in self.segments if s.path == path]

    def busiest_files(self, limit: int = 10) -> list[tuple[str, int]]:
        """(path, total bytes) pairs, largest first."""
        totals: dict[str, int] = {}
        for s in self.segments:
            totals[s.path] = totals.get(s.path, 0) + s.nbytes
        return sorted(totals.items(), key=lambda kv: -kv[1])[:limit]

    def timeline_histogram(self, bins: int = 20) -> np.ndarray:
        """Bytes moved per virtual-time bin — the DXT heatmap row sums."""
        if not self.segments:
            return np.zeros(bins)
        t0 = min(s.start for s in self.segments)
        t1 = max(s.end for s in self.segments)
        span = max(t1 - t0, 1e-12)
        out = np.zeros(bins)
        for s in self.segments:
            mid = (s.start + s.end) / 2
            idx = min(int((mid - t0) / span * bins), bins - 1)
            out[idx] += s.nbytes
        return out

    def heatmap(self, time_bins: int = 20, rank_bins: int = 16) -> str:
        """Text heatmap (ranks × time) of bytes moved — the DXT plot.

        Rows are rank groups, columns virtual-time bins, glyphs encode
        intensity — the textual cousin of darshan-job-summary's heatmap.
        """
        if not self.segments:
            return "(no segments traced)"
        t0 = min(s.start for s in self.segments)
        t1 = max(s.end for s in self.segments)
        span = max(t1 - t0, 1e-12)
        max_rank = max(s.rank for s in self.segments)
        rank_bins = min(rank_bins, max_rank + 1)
        grid = np.zeros((rank_bins, time_bins))
        for s in self.segments:
            r = min(int(s.rank / (max_rank + 1) * rank_bins), rank_bins - 1)
            c = min(int(((s.start + s.end) / 2 - t0) / span * time_bins),
                    time_bins - 1)
            grid[r, c] += s.nbytes
        glyphs = " .:-=+*#%@"
        peak = grid.max() or 1.0
        lines = [f"DXT heatmap: {rank_bins} rank bins x {time_bins} "
                 f"time bins, peak {peak:.0f} B/cell"]
        for r in range(rank_bins):
            row = "".join(
                glyphs[min(int(grid[r, c] / peak * (len(glyphs) - 1) + 0.5),
                           len(glyphs) - 1)]
                for c in range(time_bins))
            lines.append(f"ranks[{r:2d}] |{row}|")
        return "\n".join(lines)

    # -- rendering ------------------------------------------------------------

    def render(self, limit: int | None = None) -> str:
        """``darshan-dxt-parser``-style dump."""
        lines = [
            "# DXT trace (repro synthetic)",
            f"# segments: {len(self.segments)} (dropped: {self.dropped})",
            "# <module> <rank> <op> <path> <bytes> <start(s)> <end(s)>",
        ]
        segs = list(self.segments)
        if limit is not None:
            segs = segs[:limit]
        for s in segs:
            lines.append(
                f"{s.module} {s.rank} {s.kind} {s.path} {s.nbytes} "
                f"{s.start:.6f} {s.end:.6f}"
            )
        return "\n".join(lines)


class TracingMonitor:
    """Spine subscriber that traces data ops and forwards everything.

    Drop-in for the ``monitor`` argument of :class:`~repro.fs.posix.
    PosixIO`: counters keep flowing to the wrapped monitor, and
    data-moving events (``write``/``read``/``collective_write``/
    ``meta_append``) additionally produce DXT segments from the events'
    virtual-clock timestamps.
    """

    kinds = None  # forward every event; segment filter is DATA_KINDS

    def __init__(self, monitor, comm, recorder: DXTRecorder | None = None):
        self.monitor = monitor
        self.comm = comm
        self.dxt = recorder or DXTRecorder()
        self._paths: dict[int, str] = {}

    def register_file(self, ino: int, path: str) -> None:
        self._paths[int(ino)] = path
        self.monitor.register_file(ino, path)

    def register_files(self, inos, paths) -> None:
        self._paths.update(zip(np.asarray(inos).tolist(), paths))
        self.monitor.register_files(inos, paths)

    def on_event(self, event: IOEvent) -> None:
        fold = getattr(self.monitor, "on_event", None)
        if fold is not None:
            fold(event)
        else:  # pre-spine monitor: translate back to record() vocabulary
            self.monitor.record(
                "sync" if event.kind == "fsync" else event.kind,
                ranks=event.ranks, nbytes=event.nbytes,
                seconds=event.duration, api=event.api, inos=event.inos,
                n_ops=event.n_ops)
        if event.kind not in DATA_KINDS or event.inos is None:
            return
        self._trace_row(event.api, event.kind, event.ranks, event.inos,
                        event.nbytes, event.start, event.end)

    def on_batch(self, batch) -> None:
        """Fold a struct-of-arrays batch: forward once, trace data rows.

        The wrapped monitor gets the whole batch in one call when it
        can take it; DXT segments come straight off the batch columns,
        row by row in sequence order.
        """
        fold = getattr(self.monitor, "on_batch", None)
        if fold is not None:
            fold(batch)
        else:
            for event in batch.events():
                self.on_event(event)
            return
        if batch.inos is None:
            return
        for i, kind in enumerate(batch.kinds):
            if kind in DATA_KINDS:
                self._trace_row(batch.api, kind, batch.ranks, batch.inos,
                                batch.nbytes[i], batch.start[i],
                                batch.start[i] + batch.duration[i])

    def _trace_row(self, api, kind, ranks, inos, nbytes, start, end) -> None:
        paths = [self._paths.get(int(i), f"<ino {int(i)}>")
                 for i in np.broadcast_to(inos, ranks.shape)]
        self.dxt.record(f"DXT_{api}", _DXT_OP[kind],
                        ranks, paths, nbytes, start, end)

    def record(self, kind: str, ranks, nbytes, seconds, api: str,
               inos=None, n_ops=1) -> None:
        """Legacy entry point: wrap in an event with clock timestamps."""
        ranks_arr = np.atleast_1d(np.asarray(ranks))
        secs = np.broadcast_to(np.asarray(seconds, dtype=np.float64),
                               ranks_arr.shape)
        # the clock was already advanced by the caller: end = now
        ends = self.comm.clocks[ranks_arr]
        self.on_event(make_event(
            "fsync" if kind == "sync" else kind, ranks_arr, nbytes=nbytes,
            duration=secs, start=ends - secs, n_ops=n_ops, api=api,
            layer={"STDIO": "stdio", "MPIIO": "mpiio"}.get(api, "posix"),
            inos=inos))
