"""Darshan counter definitions (POSIX and STDIO modules).

A faithful subset of Darshan 3.4's counter vocabulary — the counters the
paper's analysis needs: operation counts, byte totals, cumulative time
split into read / write / metadata, and the common-access-size histogram.

Note the accounting subtlety the reproduction depends on: in Darshan,
``fsync`` time lands in ``*_F_META_TIME`` (not write time).  BIT1's
original output fsyncs every flushed stdio buffer, which is why the
paper's Fig. 5 shows 17.868 s of *metadata* time per process for the
original I/O against 1.043 s of write time.
"""

from __future__ import annotations

import numpy as np

#: modules we instrument, matching Darshan's names
MODULES = ("POSIX", "STDIO")

#: integer counters per module, in report order
COUNT_FIELDS = (
    "OPENS",
    "READS",
    "WRITES",
    "SEEKS",
    "STATS",
    "FSYNCS",
    "CLOSES",
)

#: floating-point cumulative-time counters (seconds)
TIME_FIELDS = (
    "F_READ_TIME",
    "F_WRITE_TIME",
    "F_META_TIME",
)

#: byte totals
BYTE_FIELDS = (
    "BYTES_READ",
    "BYTES_WRITTEN",
)

#: access-size histogram bucket upper bounds (bytes), Darshan's buckets
SIZE_BUCKETS = (
    100,
    1_024,
    10_240,
    102_400,
    1_048_576,
    4_194_304,
    10_485_760,
    104_857_600,
    1_073_741_824,
    np.inf,
)

SIZE_BUCKET_NAMES = (
    "SIZE_0_100",
    "SIZE_100_1K",
    "SIZE_1K_10K",
    "SIZE_10K_100K",
    "SIZE_100K_1M",
    "SIZE_1M_4M",
    "SIZE_4M_10M",
    "SIZE_10M_100M",
    "SIZE_100M_1G",
    "SIZE_1G_PLUS",
)

#: event kind (from the repro.trace spine) → count field.  The legacy
#: "sync" alias is kept for pre-spine callers of ``record()``; on the
#: wire the spine emits "fsync".  The engine-plane write kinds
#: (collective_write / meta_append) are WRITES at the POSIX boundary —
#: Darshan cannot tell an aggregator flush from any other write().
OP_TO_COUNT = {
    "open": "OPENS",
    "create": "OPENS",
    "close": "CLOSES",
    "stat": "STATS",
    "mkdir": "STATS",   # Darshan has no mkdir counter; nearest bucket
    "unlink": "STATS",
    "seek": "SEEKS",
    "sync": "FSYNCS",
    "fsync": "FSYNCS",
    "read": "READS",
    "write": "WRITES",
    "collective_write": "WRITES",
    "meta_append": "WRITES",
}

#: event kind → time category field (fsync time is metadata time — the
#: accounting subtlety behind Fig. 5, see module docstring)
OP_TO_TIME = {
    "open": "F_META_TIME",
    "create": "F_META_TIME",
    "close": "F_META_TIME",
    "stat": "F_META_TIME",
    "mkdir": "F_META_TIME",
    "unlink": "F_META_TIME",
    "seek": "F_META_TIME",
    "sync": "F_META_TIME",
    "fsync": "F_META_TIME",
    "read": "F_READ_TIME",
    "write": "F_WRITE_TIME",
    "collective_write": "F_WRITE_TIME",
    "meta_append": "F_WRITE_TIME",
}

#: event kinds whose payload counts as written / read bytes
WRITE_KINDS = frozenset({"write", "collective_write", "meta_append"})
READ_KINDS = frozenset({"read"})


def size_bucket_index(nbytes: np.ndarray) -> np.ndarray:
    """Vectorised bucket index for access sizes."""
    edges = np.array(SIZE_BUCKETS[:-1], dtype=np.float64)
    return np.searchsorted(edges, np.asarray(nbytes, dtype=np.float64),
                           side="left")


def all_counter_names(module: str) -> list[str]:
    """Full, ordered counter-name list for one module (parser output)."""
    return (
        [f"{module}_{f}" for f in COUNT_FIELDS]
        + [f"{module}_{f}" for f in BYTE_FIELDS]
        + [f"{module}_{f}" for f in TIME_FIELDS]
        + [f"{module}_{f}" for f in SIZE_BUCKET_NAMES]
    )
