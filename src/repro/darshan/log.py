"""Darshan log records: the frozen output of one monitored job.

Real Darshan writes one compressed binary log per job; this module keeps
the same information (job header, per-module per-rank counters, per-file
records) in plain dataclasses with JSON(+gzip) serialisation so logs can
be saved, reloaded and parsed offline — the workflow the paper uses
("extracting the throughput and amount of data stored by each file on the
file system using Darshan 3.4.2 logs").
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

LOG_FORMAT_VERSION = 1


@dataclass
class ModuleRecord:
    """Per-rank counters of one module (arrays indexed by rank)."""

    name: str
    counters: dict[str, np.ndarray]

    def total(self, counter: str) -> float:
        return float(self.counters[counter].sum())

    def per_rank(self, counter: str) -> np.ndarray:
        return self.counters[counter]


@dataclass
class FileRecord:
    """Aggregated per-file counters (summed over ranks)."""

    path: str
    opens: float = 0.0
    reads: float = 0.0
    writes: float = 0.0
    fsyncs: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    cumulative_time: float = 0.0


@dataclass
class DarshanLog:
    """One job's frozen instrumentation record."""

    jobid: int
    exe: str
    nprocs: int
    runtime_seconds: float
    machine: str = ""
    config: str = ""
    modules: dict[str, ModuleRecord] = field(default_factory=dict)
    files: list[FileRecord] = field(default_factory=list)
    format_version: int = LOG_FORMAT_VERSION
    #: counter-axis resolution: "rank" (real Darshan) or "node" (the
    #: memory plane's O(nodes) binning); ``nbins`` is the counter
    #: array length (== nprocs at rank granularity)
    granularity: str = "rank"
    nbins: int | None = None

    # -- convenience totals --------------------------------------------------

    def counter_total(self, name: str) -> float:
        """Sum a fully-qualified counter (e.g. ``POSIX_BYTES_WRITTEN``)."""
        for mod in self.modules.values():
            if name in mod.counters:
                return mod.total(name)
        raise KeyError(name)

    def counter_per_rank(self, name: str) -> np.ndarray:
        for mod in self.modules.values():
            if name in mod.counters:
                return mod.per_rank(name)
        raise KeyError(name)

    def total_bytes_written(self) -> float:
        return sum(
            mod.total(f"{mod.name}_BYTES_WRITTEN") for mod in self.modules.values()
        )

    def total_bytes_read(self) -> float:
        return sum(
            mod.total(f"{mod.name}_BYTES_READ") for mod in self.modules.values()
        )

    def per_rank_time(self, category: str) -> np.ndarray:
        """Per-bin time for ``F_READ_TIME``/``F_WRITE_TIME``/``F_META_TIME``.

        One entry per rank for rank-granularity logs, per node for
        node-binned ones.
        """
        out = np.zeros(self.nbins or self.nprocs)
        for mod in self.modules.values():
            out += mod.counters[f"{mod.name}_{category}"]
        return out

    # -- (de)serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "jobid": self.jobid,
            "exe": self.exe,
            "nprocs": self.nprocs,
            "runtime_seconds": self.runtime_seconds,
            "machine": self.machine,
            "config": self.config,
            "granularity": self.granularity,
            "nbins": self.nbins,
            "modules": {
                name: {c: arr.tolist() for c, arr in mod.counters.items()}
                for name, mod in self.modules.items()
            },
            "files": [vars(f).copy() for f in self.files],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DarshanLog":
        if d.get("format_version") != LOG_FORMAT_VERSION:
            raise ValueError(
                f"unsupported log format version {d.get('format_version')!r}"
            )
        modules = {
            name: ModuleRecord(
                name=name,
                counters={c: np.asarray(v, dtype=np.float64) for c, v in mod.items()},
            )
            for name, mod in d["modules"].items()
        }
        files = [FileRecord(**f) for f in d["files"]]
        return cls(
            jobid=d["jobid"],
            exe=d["exe"],
            nprocs=d["nprocs"],
            runtime_seconds=d["runtime_seconds"],
            machine=d.get("machine", ""),
            config=d.get("config", ""),
            modules=modules,
            files=files,
            granularity=d.get("granularity", "rank"),
            nbins=d.get("nbins"),
        )

    def save(self, path: str | Path) -> None:
        """Write a gzipped JSON log (``.darshan.json.gz`` by convention)."""
        raw = json.dumps(self.to_dict()).encode()
        with gzip.open(path, "wb") as fh:
            fh.write(raw)

    @classmethod
    def load(cls, path: str | Path) -> "DarshanLog":
        with gzip.open(path, "rb") as fh:
            return cls.from_dict(json.loads(fh.read().decode()))
