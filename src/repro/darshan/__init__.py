"""Darshan-like I/O monitoring: runtime counters, logs, parser, reports."""

from repro.darshan.counters import MODULES, all_counter_names
from repro.darshan.dxt import DXTRecorder, Segment, TracingMonitor
from repro.darshan.log import DarshanLog, FileRecord, ModuleRecord
from repro.darshan.parser import parse_totals, render, render_totals
from repro.darshan.report import (
    CostSplit,
    FileStats,
    agg_perf_by_slowest,
    avg_seconds_per_write,
    cost_split,
    file_stats_from_sizes,
    job_summary,
    write_throughput,
    write_throughput_gib,
)
from repro.darshan.runtime import DarshanMonitor

__all__ = [
    "MODULES",
    "CostSplit",
    "DXTRecorder",
    "DarshanLog",
    "DarshanMonitor",
    "FileRecord",
    "FileStats",
    "ModuleRecord",
    "Segment",
    "TracingMonitor",
    "agg_perf_by_slowest",
    "all_counter_names",
    "avg_seconds_per_write",
    "cost_split",
    "file_stats_from_sizes",
    "job_summary",
    "parse_totals",
    "render",
    "render_totals",
    "write_throughput",
    "write_throughput_gib",
]
