"""darshan-parser CLI for saved logs.

Usage::

    python -m repro.darshan job.darshan.json.gz            # totals + files
    python -m repro.darshan --total job.darshan.json.gz    # counters only
    python -m repro.darshan --summary job.darshan.json.gz  # job overview
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.darshan.log import DarshanLog
from repro.darshan.parser import render, render_file_records, render_totals
from repro.darshan.report import job_summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.darshan",
                                     description=__doc__)
    parser.add_argument("logfile", help="a saved .darshan.json.gz log")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--total", action="store_true",
                      help="counter totals only")
    mode.add_argument("--files", action="store_true",
                      help="per-file records only")
    mode.add_argument("--summary", action="store_true",
                      help="job overview as JSON")
    parser.add_argument("--limit", type=int, default=20,
                        help="max file records to print")
    args = parser.parse_args(argv)

    try:
        log = DarshanLog.load(args.logfile)
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.logfile}: {exc}", file=sys.stderr)
        return 1

    if args.total:
        print(render_totals(log))
    elif args.files:
        print(render_file_records(log, args.limit))
    elif args.summary:
        print(json.dumps(job_summary(log), indent=2))
    else:
        print(render(log, args.limit))
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # printing into a closed pipe (| head) is fine
        sys.stderr.close()
        raise SystemExit(0)
