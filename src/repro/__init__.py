"""repro — reproduction of "Enabling High-Throughput Parallel I/O in
Particle-in-Cell Monte Carlo Simulations with openPMD and Darshan I/O
Monitoring" (Williams et al., CLUSTER 2024).

The package builds the paper's entire stack from scratch in Python:

* :mod:`repro.pic` — a BIT1-like 1D3V electrostatic PIC Monte Carlo code;
* :mod:`repro.mpi` — a simulated MPI communicator (in-process SPMD);
* :mod:`repro.cluster` — virtual machine models of Discoverer, Dardel, Vega;
* :mod:`repro.fs` — virtual filesystem + Lustre/NFS/CephFS performance models;
* :mod:`repro.trace` — the typed I/O event spine every layer reports to;
* :mod:`repro.darshan` — I/O monitoring (counters, logs, parser, reports);
* :mod:`repro.compression` — Blosc-like and bzip2 codecs;
* :mod:`repro.adios2` — BP4/BP5 engines with two-level aggregation;
* :mod:`repro.openpmd` — the openPMD standard layer (Series/Iterations/Records);
* :mod:`repro.io_adaptor` — BIT1's original output and the openPMD adaptor;
* :mod:`repro.ior` — the IOR benchmark;
* :mod:`repro.faults` — seeded fault injection & recovery (retry, failover,
  checkpoint restart);
* :mod:`repro.workloads` / :mod:`repro.experiments` — the paper's use case
  and one driver per figure/table of the evaluation.

Quickstart::

    from repro import Bit1Simulation, VirtualComm, small_use_case
    sim = Bit1Simulation(small_use_case(), VirtualComm(4, 2))
    sim.run()
"""

from repro.cluster import Machine, dardel, discoverer, machine_by_name, vega
from repro.darshan import DarshanLog, DarshanMonitor, cost_split, write_throughput_gib
from repro.faults import (
    AggregatorFailure,
    FaultPlan,
    MDSSlowdown,
    NICFlap,
    NodeCrash,
    OSTFault,
    RetryPolicy,
    SilentCorruption,
    TransientError,
    install_faults,
)
from repro.fs import LustreFilesystem, PosixIO, mount
from repro.io_adaptor import Bit1OpenPMDWriter, OriginalIOWriter
from repro.ior import IORConfig, run_ior
from repro.mpi import VirtualComm, comm_for_nodes
from repro.openpmd import Access, Dataset, Series
from repro.pic import Bit1Config, Bit1Simulation, SpeciesConfig
from repro.resilience import CheckpointPolicy, MultiLevelStore
from repro.trace import (
    IOEvent,
    TraceBus,
    TraceSession,
    chrome_trace,
    dxt_dump,
    layer_breakdown,
)
from repro.workloads import (
    Bit1DataModel,
    ResilientRunReport,
    paper_use_case,
    run_crash_restart,
    run_openpmd_scaled,
    run_original_scaled,
    sheath_case,
    small_use_case,
)

__version__ = "1.0.0"

__all__ = [
    "Access",
    "AggregatorFailure",
    "Bit1Config",
    "Bit1DataModel",
    "Bit1OpenPMDWriter",
    "Bit1Simulation",
    "CheckpointPolicy",
    "DarshanLog",
    "DarshanMonitor",
    "Dataset",
    "FaultPlan",
    "IOEvent",
    "IORConfig",
    "LustreFilesystem",
    "MDSSlowdown",
    "Machine",
    "MultiLevelStore",
    "NICFlap",
    "NodeCrash",
    "OSTFault",
    "OriginalIOWriter",
    "PosixIO",
    "ResilientRunReport",
    "RetryPolicy",
    "Series",
    "SilentCorruption",
    "SpeciesConfig",
    "TraceBus",
    "TraceSession",
    "TransientError",
    "VirtualComm",
    "chrome_trace",
    "comm_for_nodes",
    "cost_split",
    "dardel",
    "discoverer",
    "dxt_dump",
    "install_faults",
    "layer_breakdown",
    "machine_by_name",
    "mount",
    "paper_use_case",
    "run_crash_restart",
    "run_ior",
    "run_openpmd_scaled",
    "run_original_scaled",
    "sheath_case",
    "small_use_case",
    "vega",
    "write_throughput_gib",
]
