"""The paper's primary contribution, under its canonical name.

The high-throughput parallel I/O path — the openPMD adaptor over the
ADIOS2 BP4 engine, its original-I/O baseline, and the tuning surface
(aggregation, compression, striping) — lives in :mod:`repro.io_adaptor`,
:mod:`repro.openpmd` and :mod:`repro.adios2`; this package re-exports
the contribution's public face for discoverability.
"""

from repro.adios2 import BP4Engine, BP5Engine, EngineConfig, plan_aggregation
from repro.io_adaptor import (
    Bit1OpenPMDWriter,
    CorruptCheckpointError,
    OriginalIOWriter,
    restore_from_openpmd,
    restore_from_original,
)
from repro.openpmd import Access, Dataset, Series

__all__ = [
    "Access",
    "BP4Engine",
    "BP5Engine",
    "Bit1OpenPMDWriter",
    "CorruptCheckpointError",
    "Dataset",
    "EngineConfig",
    "OriginalIOWriter",
    "Series",
    "plan_aggregation",
    "restore_from_openpmd",
    "restore_from_original",
]
