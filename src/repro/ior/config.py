"""IOR benchmark configuration (the Table I parameter surface).

The paper runs IOR on Dardel with::

    srun -n 25600 ior -N=25600 -a POSIX -F -C -e      # FilePerProc
    srun -n 25600 ior -N=25600 -a POSIX -C -e         # Shared

Parameters reproduced from the IOR documentation the paper cites:

* ``-N`` (numTasks)      — task count
* ``-a`` (api)           — POSIX | MPIIO | HDF5 | …
* ``-F`` (filePerProc)   — one file per task instead of a shared file
* ``-C`` (reorderTasksConstant) — shift read-back ranks by one
* ``-e`` (fsync)         — fsync on close of POSIX writes
* ``-t`` (transferSize)  — bytes per write call (default 256 KiB)
* ``-b`` (blockSize)     — contiguous bytes per task (default 1 MiB)
* ``-s`` (segmentCount)  — number of block repetitions
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, replace

from repro.util.units import KiB, MiB, parse_size

SUPPORTED_APIS = ("POSIX", "MPIIO")


@dataclass(frozen=True)
class IORConfig:
    """One IOR invocation."""

    num_tasks: int = 1
    api: str = "POSIX"
    file_per_proc: bool = False
    reorder_tasks: bool = False
    fsync: bool = False
    transfer_size: int = 256 * KiB
    block_size: int = 1 * MiB
    segment_count: int = 1
    test_file: str = "/scratch/ior/testFile"

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.api not in SUPPORTED_APIS:
            raise ValueError(
                f"unsupported IOR api {self.api!r}; choose from {SUPPORTED_APIS}")
        if self.transfer_size < 1 or self.block_size < 1:
            raise ValueError("transfer/block sizes must be positive")
        if self.block_size % self.transfer_size != 0:
            raise ValueError("block_size must be a multiple of transfer_size")
        if self.segment_count < 1:
            raise ValueError("segment_count must be >= 1")

    @property
    def bytes_per_task(self) -> int:
        return self.block_size * self.segment_count

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_task * self.num_tasks

    @property
    def writes_per_task(self) -> int:
        return (self.block_size // self.transfer_size) * self.segment_count

    def command_line(self) -> str:
        """Render the equivalent ior command (Table I style)."""
        parts = [f"ior -N={self.num_tasks}", f"-a {self.api}"]
        if self.file_per_proc:
            parts.append("-F")
        if self.reorder_tasks:
            parts.append("-C")
        if self.fsync:
            parts.append("-e")
        parts.append(f"-t {self.transfer_size}")
        parts.append(f"-b {self.block_size}")
        if self.segment_count != 1:
            parts.append(f"-s {self.segment_count}")
        return " ".join(parts)


def parse_command_line(cmd: str) -> IORConfig:
    """Parse an ``ior …`` command line (the Table I format)."""
    tokens = shlex.split(cmd)
    # allow a leading "srun -n <N>" prefix
    while tokens and tokens[0] != "ior":
        tokens.pop(0)
    if not tokens or tokens[0] != "ior":
        raise ValueError(f"not an ior command line: {cmd!r}")
    tokens = tokens[1:]
    kwargs: dict = {}
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.startswith("-N"):
            value = tok[3:] if tok.startswith("-N=") else tokens[(i := i + 1)]
            kwargs["num_tasks"] = int(value)
        elif tok == "-a":
            kwargs["api"] = tokens[(i := i + 1)]
        elif tok == "-F":
            kwargs["file_per_proc"] = True
        elif tok == "-C":
            kwargs["reorder_tasks"] = True
        elif tok == "-e":
            kwargs["fsync"] = True
        elif tok == "-t":
            kwargs["transfer_size"] = parse_size(tokens[(i := i + 1)])
        elif tok == "-b":
            kwargs["block_size"] = parse_size(tokens[(i := i + 1)])
        elif tok == "-s":
            kwargs["segment_count"] = int(tokens[(i := i + 1)])
        elif tok == "-o":
            kwargs["test_file"] = tokens[(i := i + 1)]
        else:
            raise ValueError(f"unknown ior option {tok!r}")
        i += 1
    return IORConfig(**kwargs)


#: the two Table I invocations, parameterised by task count
def table1_file_per_proc(num_tasks: int = 25600) -> IORConfig:
    return IORConfig(num_tasks=num_tasks, api="POSIX", file_per_proc=True,
                     reorder_tasks=True, fsync=True)


def table1_shared(num_tasks: int = 25600) -> IORConfig:
    return IORConfig(num_tasks=num_tasks, api="POSIX", file_per_proc=False,
                     reorder_tasks=True, fsync=True)
