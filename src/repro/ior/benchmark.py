"""IOR benchmark executor over the virtual cluster (Fig. 4 reference).

"The IOR benchmark is a configurable tool that can be tailored to
simulate the read and write operations of real-world applications"
(§IV-A).  The executor drives the same POSIX layer as BIT1:

* **FilePerProc** (``-F``) — every task streams its block into its own
  file; the collective write-rate model applies with one file per task
  (at 25600 tasks this is exactly the paper's extreme-aggregation regime,
  which is why the IOR-FPP number lands near the 25600-aggregator point
  of Fig. 6).
* **Shared** — all tasks write disjoint segments of one wide-striped
  file; parallelism is bounded by the stripe count and extent-lock
  churn costs a fixed efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import Machine
from repro.darshan.log import DarshanLog
from repro.darshan.report import write_throughput_gib
from repro.darshan.runtime import DarshanMonitor
from repro.fs.lustre import LustreFilesystem
from repro.fs.mount import mount
from repro.fs.posix import PosixIO
from repro.ior.config import IORConfig
from repro.mpi.comm import VirtualComm
from repro.util.rng import RngRegistry, stream_seed

#: efficiency of shared-file writes relative to independent streams
#: (extent-lock ping-pong between clients touching adjacent stripes)
SHARED_FILE_LOCK_EFFICIENCY = 0.55


@dataclass
class IORResult:
    """Outcome of one IOR run."""

    config: IORConfig
    machine: str
    log: DarshanLog
    write_gib_s: float

    def summary(self) -> str:
        return (f"IOR {self.config.command_line()} on {self.machine}: "
                f"{self.write_gib_s:.2f} GiB/s write")


def run_ior(machine: Machine, config: IORConfig,
            ranks_per_node: int = 128,
            storage_name: str | None = None,
            seed: int = 0) -> IORResult:
    """Execute one IOR write test on a machine's storage."""
    storage = (machine.default_storage if storage_name is None
               else machine.storage_named(storage_name))
    rng = RngRegistry(stream_seed(seed, machine.name, config.command_line()))
    fs = mount(storage, rng)
    nodes = -(-config.num_tasks // ranks_per_node)
    comm = VirtualComm(config.num_tasks, ranks_per_node,
                       latency=machine.network.latency,
                       bandwidth=machine.network.nic_bandwidth)
    monitor = DarshanMonitor(comm.size, exe="ior")
    posix = PosixIO(fs, comm, monitor)
    outdir = "/scratch/ior"
    posix.mkdir(0, outdir, parents=True)
    ranks = np.arange(comm.size)

    with posix.phase(writers=comm.size, md_clients=comm.size):
        if config.file_per_proc:
            paths = [f"{outdir}/testFile.{r:08d}" for r in ranks]
            fds = posix.open_group(ranks, paths, create=True)
            for _segment in range(config.segment_count):
                posix.write_aggregate(ranks, fds, config.block_size)
            if config.fsync:
                # fsync-on-close (-e): one commit per task
                sync = fs.perf.fsync_cost(comm.size, 1, n_ops=1)
                costs = np.full(comm.size, float(sync))
                posix._charge(ranks, costs)
                posix._notify("sync", ranks, 0, costs, "POSIX")
            posix.close_group(ranks, fds)
        else:
            shared_path = f"{outdir}/testFile"
            if isinstance(fs, LustreFilesystem):
                fs.lfs_setstripe(outdir, stripe_count=storage.num_osts,
                                 stripe_size="1M")
            fd = posix.open(0, shared_path, create=True)
            ino = posix._fds[fd].ino
            stripe_count = int(fs.vfs.cols.stripe_count[ino])
            # disjoint segments: parallelism bounded by the stripe count,
            # derated by extent-lock churn
            rate = float(fs.perf.aggregate_write_rate(stripe_count,
                                                      stripe_count))
            rate *= SHARED_FILE_LOCK_EFFICIENCY
            per_rank_bytes = np.full(comm.size, config.bytes_per_task,
                                     dtype=np.int64)
            fs.vfs.write_group(np.full(comm.size, ino), per_rank_bytes)
            costs = (per_rank_bytes / (rate / comm.size)
                     * fs.perf.noise(comm.size))
            posix._charge(ranks, costs)
            posix._notify("write", ranks, per_rank_bytes, costs, "POSIX",
                          inos=np.full(comm.size, ino),
                          n_ops=config.writes_per_task)
            if config.fsync:
                sync = fs.perf.fsync_cost(comm.size, stripe_count, n_ops=1)
                sync_costs = np.full(comm.size, float(sync))
                posix._charge(ranks, sync_costs)
                posix._notify("sync", ranks, 0, sync_costs, "POSIX")
            posix.close(0, fd)

    log = monitor.finalize(runtime_seconds=comm.max_time(),
                           machine=machine.name,
                           config=config.command_line())
    return IORResult(config=config, machine=machine.name, log=log,
                     write_gib_s=write_throughput_gib(log))
