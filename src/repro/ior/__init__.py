"""IOR-like configurable I/O benchmark (the paper's Fig. 4 reference)."""

from repro.ior.benchmark import SHARED_FILE_LOCK_EFFICIENCY, IORResult, run_ior
from repro.ior.config import (
    IORConfig,
    parse_command_line,
    table1_file_per_proc,
    table1_shared,
)

__all__ = [
    "IORConfig",
    "IORResult",
    "SHARED_FILE_LOCK_EFFICIENCY",
    "parse_command_line",
    "run_ior",
    "table1_file_per_proc",
    "table1_shared",
]
