"""IOR command-line front end over the virtual cluster.

Usage::

    python -m repro.ior --machine dardel "ior -N=25600 -a POSIX -F -C -e"
    python -m repro.ior --machine vega   "ior -N=1280 -a POSIX -C -e -t 1M"

Accepts the exact command lines of the paper's Table I (the optional
``srun -n <N>`` prefix is tolerated) and prints the write result.
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.presets import machine_by_name
from repro.ior.benchmark import run_ior
from repro.ior.config import parse_command_line


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.ior", description=__doc__)
    parser.add_argument("command", help="an ior command line (quote it)")
    parser.add_argument("--machine", default="dardel",
                        help="virtual machine preset (default: dardel)")
    parser.add_argument("--storage", default=None,
                        help="storage system name (default: the machine's LFS)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    try:
        machine = machine_by_name(args.machine)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        config = parse_command_line(args.command)
    except ValueError as exc:
        print(f"bad ior command line: {exc}", file=sys.stderr)
        return 2

    result = run_ior(machine, config, storage_name=args.storage,
                     seed=args.seed)
    print(result.summary())
    print(f"  tasks: {config.num_tasks}, total bytes: {config.total_bytes}")
    print(f"  mode: {'file-per-process' if config.file_per_proc else 'shared file'}"
          f"{', fsync on close' if config.fsync else ''}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
