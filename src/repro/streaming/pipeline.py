"""The in-situ pipeline: BIT1 coupled to consumers through staging.

Two drivers, mirroring the repo's functional/modeled split:

* :func:`run_insitu` — a real (small-scale) BIT1 simulation whose openPMD
  output flows through the SST staging transport instead of files; the
  attached :mod:`repro.streaming.consumers` run the actual analysis
  reductions step by step.  The streamed variables carry exactly the
  bytes :class:`~repro.io_adaptor.openpmd_adaptor.Bit1OpenPMDWriter`
  would store (same dtypes, offsets, accumulator side effects), so the
  in-situ reductions are bit-identical to post-hoc analysis of the
  file-based series for the same config and seed.
* :func:`run_streaming_scaled` — the full-scale counterpart of
  :func:`repro.workloads.runner.run_openpmd_scaled`: synthetic byte
  volumes from the Table-II data model, published through the transport
  at the ``datfile``/``dmpstep`` cadence, with an analysis consumer and
  an optional checkpoint tee (the only storage the streaming path pays).

Fault-plane coverage: :class:`~repro.faults.plan.ConsumerCrash` specs
are interpreted here (the I/O-side injector ignores them) — the named
consumer detaches at its crash step and optionally reattaches at
``rejoin_step``; NIC flaps derate stream transfers live through the
communicator's fault state, with or without a full injector installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adios2.sst import SSTEngine, StreamRegistry
from repro.faults import ConsumerCrash, FaultPlan, NICFlap, RetryPolicy
from repro.faults.injector import FaultState, install_faults
from repro.fs.posix import PosixIO
from repro.io_adaptor.naming import species_path
from repro.mpi.comm import VirtualComm
from repro.pic.config import Bit1Config
from repro.pic.deposit import deposit_charge
from repro.pic.simulation import Bit1Simulation
from repro.streaming.consumers import (
    ANALYSIS_RATE,
    CheckpointTee,
    InSituConsumer,
    MomentsConsumer,
    TimeseriesConsumer,
)
from repro.streaming.staging import StagedTransport
from repro.trace.session import TraceSession
from repro.workloads.datamodel import Bit1DataModel
from repro.workloads.presets import paper_use_case
from repro.workloads.runner import _event_steps, _setup


class StreamingBit1Writer:
    """openPMD-over-SST output path for BIT1 (functional mode).

    Satisfies the simulation's :class:`~repro.pic.simulation.OutputWriter`
    protocol, but every iteration becomes one staged stream step instead
    of filesystem writes.  The variable set, dtypes, chunk offsets and
    accumulator side effects (``profiles()`` before ``snapshot(reset=
    True)``) replicate :class:`Bit1OpenPMDWriter` exactly — the basis of
    the in-situ == post-hoc bit-identity guarantee.  Steps are tagged
    with ``kind`` (``diagnostics``/``checkpoint``) and ``time_step``
    attributes so consumers can dispatch.
    """

    def __init__(self, transport: StagedTransport, comm: VirtualComm):
        self.transport = transport
        self.comm = comm
        self._snapshots = 0

    # -- diagnostics ------------------------------------------------------

    def write_diagnostics(self, sim, step: int) -> None:
        t = self.transport
        t.begin_step()
        t.put_attribute("kind", "diagnostics")
        t.put_attribute("time_step", step)
        # profiles must be taken before snapshot() resets the accumulators
        profiles = sim.diagnostics.profiles()
        dists = sim.diagnostics.snapshot(reset=True)
        nnodes = sim.grid.nnodes
        nranks = self.comm.size

        for name, dist in dists.items():
            sp = species_path(name)
            nbins = len(dist.velocity)
            for kind, values in (("dfv", dist.velocity),
                                 ("dfe", dist.energy),
                                 ("dfa", dist.angular)):
                t.put(f"{sp}_{kind}", "double", (nbins,), 0, (0,), (nbins,),
                      values.astype(np.float64), entropy="diagnostic_float64")

        for name, profile in profiles.items():
            sp = species_path(name)
            t.put(f"{sp}_density", "double", (nnodes,), 0, (0,), (nnodes,),
                  profile.astype(np.float64), entropy="diagnostic_float64")

        names = sim.species_names()
        row_len = 2 * len(names)
        offsets = self.comm.exscan_sum([row_len] * nranks)
        rows = np.empty((nranks, row_len), dtype=np.float64)
        for j, name in enumerate(names):
            parts = [sim.particles[r][name] for r in range(nranks)]
            rows[:, 2 * j] = [float(len(p)) for p in parts]
            rows[:, 2 * j + 1] = [p.kinetic_energy() for p in parts]
        for r in range(nranks):
            t.put("rank_summary", "double", (nranks * row_len,), r,
                  (int(offsets[r]),), (row_len,), rows[r],
                  entropy="diagnostic_float64")
        t.end_step()
        self._snapshots += 1

    # -- checkpoints ------------------------------------------------------

    def write_checkpoint(self, sim, step: int) -> None:
        t = self.transport
        t.begin_step()
        t.put_attribute("kind", "checkpoint")
        t.put_attribute("time_step", step)
        t.put_attribute("checkpointStep", step)
        nranks = self.comm.size
        for name in sim.species_names():
            sp = species_path(name)
            arrays_by_rank = [sim.particles[r][name] for r in range(nranks)]
            counts = np.fromiter((len(a) for a in arrays_by_rank),
                                 dtype=np.int64, count=nranks)
            total = int(counts.sum())
            offsets = self.comm.exscan_sum(counts)
            active = np.nonzero(counts)[0]
            records = {
                ("position", "x"): "x",
                ("momentum", "x"): "vx",
                ("momentum", "y"): "vy",
                ("momentum", "z"): "vz",
                ("weighting", None): "weight",
            }
            for (rec_name, comp_name), fld in records.items():
                vname = f"{sp}/{rec_name}" + (
                    f"/{comp_name}" if comp_name is not None else "")
                t.engine.declare_variable(vname, "double",
                                          (max(total, 0),))
                for r in active.tolist():
                    t.put(vname, "double", (max(total, 0),), r,
                          (int(offsets[r]),), (int(counts[r]),),
                          getattr(arrays_by_rank[r], fld)[:counts[r]]
                          .astype(np.float64))
        rho = np.zeros(sim.grid.nnodes)
        for per_rank in sim.particles:
            rho += deposit_charge(sim.grid, list(per_rank.values()))
        t.put("charge_density", "double", (sim.grid.nnodes,), 0, (0,),
              (sim.grid.nnodes,), rho, entropy="diagnostic_float64")
        t.end_step()

    # -- lifecycle --------------------------------------------------------

    def finalize(self, sim) -> None:
        self.transport.close()

    @property
    def snapshots_written(self) -> int:
        return self._snapshots


class _StreamFaultController:
    """Applies the streaming-plane slice of a FaultPlan.

    The I/O injector deliberately ignores :class:`ConsumerCrash` —
    consumers are not filesystem entities.  This controller interprets
    them: detach at the crash step, reattach at ``rejoin_step``.  It
    also recomputes the NIC derating per step when no full injector is
    installed (functional runs without a POSIX stack), so NIC flaps
    derate stream transfers identically either way.
    """

    def __init__(self, plan: FaultPlan | None, transport: StagedTransport,
                 comm: VirtualComm, bus=None, own_nic: bool = False):
        self.plan = plan
        self.transport = transport
        self.comm = comm
        self.bus = bus
        self.own_nic = own_nic and plan is not None \
            and bool(plan.of_type(NICFlap))
        if self.own_nic and comm.fault_state is None:
            comm.fault_state = FaultState()
        self._events: list[tuple[int, int, str, str]] = []
        if plan is not None:
            for spec in plan.of_type(ConsumerCrash):
                self._events.append((spec.step, 0, "detach", spec.consumer))
                if spec.rejoin_step is not None:
                    self._events.append(
                        (spec.rejoin_step, 1, "reattach", spec.consumer))
        self._events.sort()
        self._next = 0

    def begin_step(self, step: int) -> None:
        if self.own_nic:
            self.comm.fault_state.nic_factor = min(
                [s.factor for s in self.plan.of_type(NICFlap)
                 if s.active(step)], default=1.0)
        while (self._next < len(self._events)
               and self._events[self._next][0] <= step):
            at, _order, action, name = self._events[self._next]
            self._next += 1
            if name not in self.transport._by_name:
                continue
            if action == "detach":
                self.transport.detach(name)
            else:
                self.transport.reattach(name)
            if self.bus is not None and self.bus.wants("fault"):
                with self.bus.step(at):
                    self.bus.emit("fault", np.array([0]), api="CONSUMER",
                                  layer="faults", start=np.array(
                                      [self.comm.max_time()]))


# -- functional driver ----------------------------------------------------


@dataclass
class InSituRunReport:
    """Outcome of one :func:`run_insitu` coupled run."""

    sim: Bit1Simulation
    transport: StagedTransport
    consumers: dict[str, InSituConsumer]
    steps: int

    @property
    def makespan(self) -> float:
        return self.transport.makespan()

    @property
    def time_to_first_insight(self) -> float | None:
        return self.transport.time_to_first_insight()


def run_insitu(config: Bit1Config, comm: VirtualComm | None = None,
               consumers: dict[str, InSituConsumer] | None = None,
               queue_depth: int = 2, policy: str = "block",
               registry: StreamRegistry | None = None,
               plan: FaultPlan | None = None,
               bus=None,
               compute_seconds_per_step: float = 0.0,
               stream_name: str = "bit1_insitu") -> InSituRunReport:
    """Run a functional BIT1 simulation with streamed in-situ analysis.

    No simulation output touches the filesystem: every diagnostics and
    checkpoint iteration is staged through a (run-scoped) SST stream
    and consumed as it arrives.  ``consumers=None`` attaches the default
    analysis pair — :class:`MomentsConsumer` over the streamed phase
    space and :class:`TimeseriesConsumer` over the density profiles.

    The step loop is driven here (not via ``sim.run``) so the fault
    plan's streaming-plane specs apply at step boundaries exactly as the
    injector applies I/O faults; determinism is inherited from the
    seeded config + plan (no wall-clock anywhere in the path).
    """
    comm = comm or VirtualComm(1, 1)
    registry = registry if registry is not None else StreamRegistry()
    engine = SSTEngine(None, comm, f"{stream_name}.sst",
                       queue_depth=queue_depth, policy=policy,
                       registry=registry)
    transport = StagedTransport(engine, bus=bus)
    sim = Bit1Simulation(config, comm)
    if consumers is None:
        masses = {s.name: s.mass for s in config.species}
        consumers = {
            "moments": MomentsConsumer(sim.grid, masses),
            "timeseries": TimeseriesConsumer(),
        }
    for name, consumer in consumers.items():
        transport.attach(consumer, name=name)
    writer = StreamingBit1Writer(transport, comm)
    controller = _StreamFaultController(plan, transport, comm, bus=bus,
                                        own_nic=True)
    cfg = config
    while sim.step_index < cfg.last_step:
        controller.begin_step(sim.step_index + 1)
        sim.step()
        if compute_seconds_per_step:
            comm.advance_all(compute_seconds_per_step)
        if sim.step_index % cfg.datfile == 0:
            writer.write_diagnostics(sim, sim.step_index)
        if sim.step_index % cfg.dmpstep == 0:
            writer.write_checkpoint(sim, sim.step_index)
    writer.write_checkpoint(sim, sim.step_index)
    writer.finalize(sim)
    return InSituRunReport(sim=sim, transport=transport,
                           consumers=dict(consumers),
                           steps=sim.step_index)


# -- scaled driver --------------------------------------------------------


@dataclass
class StreamingRunResult:
    """Everything one scaled streaming run produces."""

    machine: str
    config_label: str
    nodes: int
    nranks: int
    comm: VirtualComm
    transport: StagedTransport
    #: job wall time including consumer drain (seconds, virtual)
    makespan: float
    producer_seconds: float
    time_to_first_insight: float | None
    peak_staging_bytes: int
    stalls: int
    stall_seconds: float
    dropped: int
    published: int
    #: bytes the checkpoint tee landed on storage (0 without a tee)
    stored_bytes: int
    #: bytes a file-based run would have written (storage avoided =
    #: this minus ``stored_bytes``)
    file_bytes_equivalent: float
    consumer_stats: dict = field(default_factory=dict)
    trace: TraceSession | None = None

    @property
    def storage_bytes_avoided(self) -> float:
        return max(self.file_bytes_equivalent - self.stored_bytes, 0.0)


def run_streaming_scaled(machine, nodes: int,
                         config: Bit1Config | None = None,
                         ranks_per_node: int = 128,
                         queue_depth: int = 4, policy: str = "block",
                         analysis_rate: float = ANALYSIS_RATE,
                         compute_seconds_per_step: float = 0.0,
                         checkpoint_tee: bool = True,
                         storage_name: str | None = None,
                         seed: int = 0, trace_mode: str | None = None,
                         fault_plan: FaultPlan | None = None,
                         retry_policy: RetryPolicy | None = None,
                         ) -> StreamingRunResult:
    """Full-scale BIT1 with in-situ streaming instead of file output.

    The modeled counterpart of :func:`run_openpmd_scaled`: identical
    event cadence and Table-II byte volumes, but every event is staged
    to an analysis consumer over the NIC (network model) rather than
    written through the storage model.  An optional checkpoint tee on a
    staging node persists each streamed checkpoint — the only storage
    traffic the streaming path pays.
    """
    config = config or paper_use_case()
    comm, fs, posix, monitor, session = _setup(
        machine, nodes, ranks_per_node, storage_name, seed,
        "bit1-sst", trace_mode)
    injector = (install_faults(posix, fault_plan, retry_policy)
                if fault_plan is not None else None)
    model = Bit1DataModel(config, comm.size)
    registry = StreamRegistry()
    engine = SSTEngine(posix, comm, "bit1_stream.sst",
                       queue_depth=queue_depth, policy=policy,
                       registry=registry)
    transport = StagedTransport(engine, bus=session.bus)
    transport.attach(InSituConsumer("analysis", analysis_rate=analysis_rate))
    tee = None
    if checkpoint_tee:
        # the tee is a staging-node process: its own 1-rank comm and an
        # untraced POSIX stack so its writes never pollute the producer
        # job's Darshan counters
        tee_comm = VirtualComm(1, 1, latency=machine.network.latency,
                               bandwidth=machine.network.nic_bandwidth)
        tee_posix = PosixIO(fs, tee_comm)
        tee = CheckpointTee(tee_posix, tee_comm, "/scratch/io_stream")
        transport.attach(tee)
    controller = _StreamFaultController(fault_plan, transport, comm,
                                        bus=session.bus)

    ranks = np.arange(comm.size)
    diag_bytes = model.diag_bytes_per_rank_per_event()
    ckpt_bytes = model.ckpt_bytes_per_rank()
    prev_step = 0
    with posix.phase(writers=comm.size, md_clients=comm.size):
        for step, is_ckpt in _event_steps(config):
            with posix.trace.step(step):
                if injector is not None:
                    injector.begin_step(step)
                controller.begin_step(step)
                if compute_seconds_per_step and step > prev_step:
                    comm.advance_all(
                        (step - prev_step) * compute_seconds_per_step)
                prev_step = step
                transport.begin_step()
                transport.put_attribute("time_step", step)
                if is_ckpt:
                    transport.put_attribute("kind", "checkpoint")
                    transport.put_group("phase_space", ranks, ckpt_bytes)
                else:
                    transport.put_attribute("kind", "diagnostics")
                    transport.put_group("rank_summary", ranks,
                                        int(diag_bytes))
                transport.end_step()
        transport.close()

    label = f"SST+{policy}+q{queue_depth}"
    monitor.finalize(runtime_seconds=transport.makespan(),
                     machine=machine.name, config=label)
    return StreamingRunResult(
        machine=machine.name, config_label=label, nodes=nodes,
        nranks=comm.size, comm=comm, transport=transport,
        makespan=transport.makespan(),
        producer_seconds=transport.producer_seconds(),
        time_to_first_insight=transport.time_to_first_insight(),
        peak_staging_bytes=transport.peak_staging_bytes(),
        stalls=transport.stalls, stall_seconds=transport.stall_seconds,
        dropped=transport.dropped, published=transport.published,
        stored_bytes=tee.stored_bytes if tee is not None else 0,
        file_bytes_equivalent=model.openpmd_transferred_bytes(),
        consumer_stats=transport.stats(), trace=session)
