"""Staged producer→consumer transport with virtual-time backpressure.

The SST engine (:mod:`repro.adios2.sst`) gives the raw mechanics —
bounded staging buffer, per-consumer cursors, block/discard policies.
This module adds the *time model*: consumers are virtual-time entities
with their own ready clocks, every delivery pays an ingress transfer
over a :class:`NetworkPath` (the ``repro.cluster`` network model — NIC
latency/bandwidth with live fault derating — never the storage model),
and producer backpressure becomes measurable virtual seconds:

* **block** — publishing into a full buffer stalls the producer until
  the laggard consumer has copied the oldest step out of the staging
  buffer (its pickup transfer completes and the slot retires); the
  stall is charged to every producer clock and emitted as a ``stall``
  trace event.
* **discard** — consumer pickups are committed only up to the producer's
  current time before each publish (a consumer is never scheduled into
  the future it hasn't reached), then the engine drops the oldest
  buffered steps as needed, emitting ``drop`` events.

Delivery scheduling is greedy and deterministic: a consumer picks up
the next step at ``max(consumer ready, step available)``, pays the
ingress transfer, runs its per-step analysis (the consumer reports the
cost), and becomes ready again.  Staging-slot release times and the
per-entry residency intervals give peak staging memory exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adios2.sst import SSTEngine, StepData
from repro.mpi.comm import VirtualComm


@dataclass
class NetworkPath:
    """Consumer-side ingress path: latency + bandwidth, fault-aware.

    When ``comm`` is set, an installed fault state's NIC derating
    applies live (a NIC flap slows stream deliveries exactly as it
    slows collectives).
    """

    latency: float = 2.0e-6
    bandwidth: float = 25.0e9
    comm: VirtualComm | None = None

    @classmethod
    def of(cls, comm: VirtualComm) -> "NetworkPath":
        return cls(latency=comm.config.latency,
                   bandwidth=comm.config.bandwidth, comm=comm)

    def seconds(self, nbytes: float) -> float:
        bw = self.bandwidth
        if self.comm is not None and self.comm.fault_state is not None:
            bw *= max(self.comm.fault_state.nic_factor, 1e-6)
        return self.latency + float(nbytes) / max(bw, 1e-6)


@dataclass
class ConsumerStats:
    """What one consumer did over the run (virtual time)."""

    name: str
    delivered: int = 0
    missed: int = 0
    first_completion: float | None = None
    last_completion: float = 0.0
    busy_seconds: float = 0.0


@dataclass
class _ConsumerState:
    consumer: object
    cid: int
    slot: int  # stable ordinal: trace rank = nranks + slot
    ready: float = 0.0
    attached: bool = True
    stats: ConsumerStats = field(default_factory=lambda: ConsumerStats(""))


class StagedTransport:
    """Couples one SST engine to in-situ consumers in virtual time.

    Producer-side it forwards the BP step API (``begin_step`` / ``put``
    / ``put_group`` / ``put_attribute`` / ``end_step`` / ``close``);
    ``end_step`` applies the stream's backpressure policy *before*
    publishing, so block-policy stalls and discard-policy drops land in
    the virtual timeline (and on the trace bus) at the right moment.
    """

    def __init__(self, engine: SSTEngine, path: NetworkPath | None = None,
                 bus=None):
        self.engine = engine
        self.stream = engine.stream
        self.path = path if path is not None else NetworkPath.of(engine.comm)
        self.bus = bus
        self._consumers: list[_ConsumerState] = []
        self._by_name: dict[str, _ConsumerState] = {}
        #: publish index → (availability time, slot release time, bytes)
        self._avail: dict[int, float] = {}
        self._release: dict[int, float] = {}
        self._bytes: dict[int, int] = {}
        self.stalls = 0
        self.stall_seconds = 0.0
        self._closed = False

    # -- consumers --------------------------------------------------------

    def attach(self, consumer, name: str | None = None) -> ConsumerStats:
        """Attach an in-situ consumer; its cursor starts at the oldest
        buffered step and its clock at the producer's current time."""
        name = name or getattr(consumer, "name", None) or \
            f"consumer{len(self._consumers)}"
        if name in self._by_name:
            raise ValueError(f"consumer {name!r} already attached")
        cs = _ConsumerState(consumer=consumer, cid=self.stream.attach(),
                            slot=len(self._consumers),
                            ready=self.engine.comm.max_time())
        cs.stats.name = name
        self._consumers.append(cs)
        self._by_name[name] = cs
        return cs.stats

    def detach(self, name: str) -> None:
        """Drop one consumer's cursor (crash or planned departure)."""
        cs = self._by_name[name]
        if cs.attached:
            self.stream.detach(cs.cid)
            cs.attached = False

    def reattach(self, name: str) -> None:
        """Bring a detached consumer back at the oldest surviving step."""
        cs = self._by_name[name]
        if not cs.attached:
            cs.cid = self.stream.attach()
            cs.attached = True
            cs.ready = max(cs.ready, self.engine.comm.max_time())

    def stats(self) -> dict[str, ConsumerStats]:
        out = {}
        for name, cs in self._by_name.items():
            cs.stats.missed = self.stream.published - cs.stats.delivered
            out[name] = cs.stats
        return out

    # -- producer-side step API ------------------------------------------

    def begin_step(self) -> int:
        return self.engine.begin_step()

    def put(self, *args, **kw):
        return self.engine.put(*args, **kw)

    def put_group(self, *args, **kw):
        return self.engine.put_group(*args, **kw)

    def put_attribute(self, *args, **kw):
        return self.engine.put_attribute(*args, **kw)

    def end_step(self) -> StepData:
        comm = self.engine.comm
        incoming = self.engine.pending_bytes()
        if self.stream.policy == "block":
            t_ready = comm.max_time()
            release = self._make_room_blocking(incoming)
            if release > t_ready:
                stall = release - t_ready
                self.stalls += 1
                self.stall_seconds += stall
                if self.bus is not None and self.bus.wants("stall"):
                    ranks = np.arange(comm.size)
                    with self.bus.step(self.engine._step):
                        self.bus.emit("stall", ranks, duration=stall,
                                      start=comm.clocks, api="SST",
                                      layer="stream")
                # every producer rank waits for the staging slot
                np.maximum(comm.clocks, release, out=comm.clocks)
        else:
            # commit only the pickups consumers have reached by *now* —
            # never schedule a consumer into a future where a step it
            # would have taken has already been dropped
            self._commit(until=comm.max_time())
        data = self.engine.end_step()
        idx = self.stream.published - 1
        now = comm.max_time()
        self._avail[idx] = now
        self._bytes[idx] = data.total_bytes
        for old_idx, _old in self.engine.last_dropped:
            # dropped entries leave the buffer at publish time
            self._release.setdefault(old_idx, now)
        return data

    def close(self) -> None:
        """Close the producer and drain every remaining delivery."""
        if self._closed:
            return
        self.engine.close()
        self._commit(until=None)
        self._closed = True

    # -- delivery scheduling ----------------------------------------------

    def _deliver_next(self, cs: _ConsumerState,
                      until: float | None) -> bool:
        """Schedule one pickup for one consumer; False when none fits."""
        peek = self.stream.peek_for(cs.cid)
        if peek is None:
            return False
        idx, data = peek
        start = max(cs.ready, self._avail.get(idx, 0.0))
        if until is not None and start > until:
            return False
        transfer = self.path.seconds(data.total_bytes)
        # the staging slot frees once the consumer's copy completes
        self._release[idx] = max(self._release.get(idx, 0.0),
                                 start + transfer)
        cost = cs.consumer.process(data, start + transfer)
        end = start + transfer + max(float(cost), 0.0)
        self.stream.advance(cs.cid)
        cs.ready = end
        cs.stats.delivered += 1
        cs.stats.busy_seconds += end - start
        if cs.stats.first_completion is None:
            cs.stats.first_completion = end
        cs.stats.last_completion = end
        if self.bus is not None and self.bus.wants("deliver"):
            rank = self.engine.comm.size + cs.slot
            with self.bus.step(data.step):
                self.bus.emit("deliver", np.array([rank]),
                              nbytes=data.total_bytes,
                              duration=end - start, start=start,
                              api="SST", layer="stream")
        return True

    def _commit(self, until: float | None) -> None:
        progressed = True
        while progressed:
            progressed = False
            for cs in self._consumers:
                if cs.attached and self._deliver_next(cs, until):
                    progressed = True

    def _make_room_blocking(self, incoming: int) -> float:
        """Drain the oldest entries until the buffer can accept one more;
        returns the virtual time the last needed slot is released."""
        release = 0.0
        while not self.stream.can_accept(incoming):
            active = [cs for cs in self._consumers if cs.attached]
            if not active:
                # nothing will ever drain the buffer: surface the
                # engine's own deadlock error
                break
            target = self.stream.base
            for cs in active:
                while self.stream.cursors[cs.cid] <= target:
                    if not self._deliver_next(cs, until=None):
                        break
            release = max(release, self._release.get(target, 0.0))
        return release

    # -- metrics ----------------------------------------------------------

    @property
    def dropped(self) -> int:
        return self.stream.dropped

    @property
    def published(self) -> int:
        return self.stream.published

    def producer_seconds(self) -> float:
        return self.engine.comm.max_time()

    def makespan(self) -> float:
        """End of the whole pipeline: producer and every consumer done."""
        last = max((cs.stats.last_completion for cs in self._consumers),
                   default=0.0)
        return max(self.producer_seconds(), last)

    def time_to_first_insight(self) -> float | None:
        """Earliest completed delivery of an insight-bearing consumer."""
        firsts = [cs.stats.first_completion for cs in self._consumers
                  if getattr(cs.consumer, "insight", True)
                  and cs.stats.first_completion is not None]
        return min(firsts) if firsts else None

    def peak_staging_bytes(self) -> int:
        """Max bytes resident in the staging buffer at any instant."""
        events: list[tuple[float, int, int]] = []
        for idx, t0 in self._avail.items():
            t1 = self._release.get(idx, t0)
            nbytes = self._bytes.get(idx, 0)
            events.append((t0, 0, nbytes))   # additions before removals
            events.append((max(t1, t0), 1, -nbytes))
        events.sort()
        peak = cur = 0
        for _t, _o, delta in events:
            cur += delta
            peak = max(peak, cur)
        return peak
