"""In-situ consumers: analysis reductions that run as steps arrive.

Each consumer is a virtual-time entity the staging transport schedules:
``process(step_data, when)`` receives one staged step at virtual time
``when`` (ingress transfer already paid) and returns the virtual
seconds the per-step work costs.  Functional runs carry real payloads
and the consumers execute the actual :mod:`repro.analysis` reductions —
bit-identical to running the same analysis post-hoc over the file-based
series.  Modeled runs carry synthetic payloads; the reductions are
skipped but the cost model (bytes / analysis rate + fixed overhead)
still advances the consumer clock.
"""

from __future__ import annotations

import numpy as np

from repro.adios2.sst import StepData, assemble_variable
from repro.analysis.moments import MomentProfiles, compute_moments
from repro.fs.payload import SyntheticPayload
from repro.io_adaptor.naming import SPECIES_NAMES

#: bytes/s a consumer reduces staged data at (numpy streaming reductions)
ANALYSIS_RATE = 2.0 * 1024**3
#: fixed per-step consumer overhead, seconds (deserialise + bookkeeping)
STEP_OVERHEAD_SECONDS = 1.0e-4


class InSituConsumer:
    """Base consumer: cost model + payload-kind dispatch.

    Subclasses override :meth:`on_step`; ``insight=True`` marks
    consumers whose first completed delivery counts as the pipeline's
    time-to-first-insight.
    """

    insight = True

    def __init__(self, name: str,
                 analysis_rate: float = ANALYSIS_RATE,
                 overhead_seconds: float = STEP_OVERHEAD_SECONDS):
        self.name = name
        self.analysis_rate = analysis_rate
        self.overhead_seconds = overhead_seconds
        self.steps_seen: list[int] = []

    def cost_seconds(self, data: StepData) -> float:
        return self.overhead_seconds + data.total_bytes / self.analysis_rate

    def process(self, data: StepData, when: float) -> float:
        """Handle one staged step; returns the analysis cost (seconds)."""
        self.steps_seen.append(int(data.attributes.get("time_step",
                                                       data.step)))
        self.on_step(data, when)
        return self.cost_seconds(data)

    def on_step(self, data: StepData, when: float) -> None:  # pragma: no cover
        pass


def _assembled(data: StepData, name: str) -> np.ndarray | None:
    """Assemble a variable, or None for synthetic/absent data."""
    if name not in data.variables:
        return None
    try:
        return assemble_variable(data, name)
    except NotImplementedError:
        return None  # modeled run: sizes only


class MomentsConsumer(InSituConsumer):
    """Velocity-moment profiles from streamed checkpoint phase space.

    For every checkpoint-tagged step carrying real payloads, assembles
    each species' phase-space arrays (chunks land at their exscan
    offsets, exactly as the file-based series stores them) and computes
    :func:`repro.analysis.moments.compute_moments` — the same reduction
    the post-hoc path runs on :meth:`Bit1SeriesReader.phase_space`.
    ``moments[species]`` always holds the latest checkpoint's profiles.
    """

    def __init__(self, grid, masses: dict[str, float],
                 name: str = "moments", **kw):
        super().__init__(name, **kw)
        self.grid = grid
        self.masses = dict(masses)
        #: BIT1 species name → latest MomentProfiles
        self.moments: dict[str, MomentProfiles] = {}

    def on_step(self, data: StepData, when: float) -> None:
        if data.attributes.get("kind") != "checkpoint":
            return
        for bit1_name in self.masses:
            sp = SPECIES_NAMES.get(bit1_name, bit1_name)
            arrays = {}
            for comp, var in (("x", f"{sp}/position/x"),
                              ("vx", f"{sp}/momentum/x"),
                              ("vy", f"{sp}/momentum/y"),
                              ("vz", f"{sp}/momentum/z"),
                              ("weight", f"{sp}/weighting")):
                arrays[comp] = _assembled(data, var)
            if any(v is None for v in arrays.values()):
                continue
            self.moments[bit1_name] = compute_moments(
                self.grid, arrays["x"], arrays["vx"], arrays["vy"],
                arrays["vz"], arrays["weight"], self.masses[bit1_name])


class TimeseriesConsumer(InSituConsumer):
    """Species inventory history folded from streamed density profiles.

    Mirrors :meth:`Bit1SeriesReader.density_history` exactly: each
    diagnostics step's density profile is integrated with trapezoid
    node weights (interior 1, ends ½) and appended to the series, so
    the in-situ history is bit-identical to the post-hoc one.
    """

    def __init__(self, name: str = "timeseries", **kw):
        super().__init__(name, **kw)
        self._steps: dict[str, list[int]] = {}
        self._totals: dict[str, list[float]] = {}

    def on_step(self, data: StepData, when: float) -> None:
        if data.attributes.get("kind") != "diagnostics":
            return
        step = int(data.attributes.get("time_step", data.step))
        for bit1_name, sp in SPECIES_NAMES.items():
            profile = _assembled(data, f"{sp}_density")
            if profile is None:
                continue
            w = np.ones(len(profile))
            w[0] = w[-1] = 0.5
            self._steps.setdefault(bit1_name, []).append(step)
            self._totals.setdefault(bit1_name, []).append(
                float((profile * w).sum()))

    def history(self, bit1_species: str) -> tuple[np.ndarray, np.ndarray]:
        """(iterations, total inventory) — the post-hoc reader's shape."""
        return (np.asarray(self._steps.get(bit1_species, [])),
                np.asarray(self._totals.get(bit1_species, [])))


class CheckpointTee(InSituConsumer):
    """Persists streamed checkpoint steps through the storage model.

    The one consumer that *does* touch storage: a staging-node writer
    with its own (typically 1-rank) communicator lands each streamed
    checkpoint in ``outdir``, fsynced — the run stays restartable even
    though the producer never writes files.  The per-step cost is the
    measured storage time of that write, not the analysis-rate model.
    Not an insight consumer.
    """

    insight = False

    def __init__(self, posix, comm, outdir: str, name: str = "ckpt-tee",
                 **kw):
        super().__init__(name, **kw)
        self.posix = posix
        self.comm = comm
        self.outdir = outdir.rstrip("/")
        if not posix.exists(self.outdir):
            posix.mkdir(0, self.outdir, parents=True)
        self.stored_bytes = 0
        self.checkpoints: list[int] = []

    def process(self, data: StepData, when: float) -> float:
        self.steps_seen.append(int(data.attributes.get("time_step",
                                                       data.step)))
        if data.attributes.get("kind") != "checkpoint":
            return 0.0
        step = int(data.attributes.get("time_step", data.step))
        # align the tee's clock with the delivery time, then measure the
        # storage cost as the clock delta the write run incurs
        np.maximum(self.comm.clocks, when, out=self.comm.clocks)
        t0 = self.comm.max_time()
        path = f"{self.outdir}/stream_ckpt.bp"
        fd = self.posix.open(0, path, create=True, truncate=True)
        self.posix.write(0, fd, SyntheticPayload(
            max(int(data.total_bytes), 1), "particle_float32"))
        self.posix.fsync(0, fd)
        self.posix.close(0, fd)
        self.stored_bytes += int(data.total_bytes)
        self.checkpoints.append(step)
        return self.comm.max_time() - t0
