"""In-situ streaming analysis (paper §VI: the ADIOS2 SST direction).

``repro.streaming`` couples the PIC producer to in-situ analysis
consumers through a staged transport with bounded buffers and explicit
backpressure — no simulation output touches the virtual filesystem.
Transfer costs are charged through the ``repro.cluster`` network model
(NIC latency/bandwidth, derated live by NIC-flap faults), never the
storage model; the only storage traffic is the optional checkpoint tee.

Layers: :mod:`repro.adios2.sst` (stream mechanics: cursors, policies),
:mod:`repro.streaming.staging` (the virtual-time scheduler),
:mod:`repro.streaming.consumers` (analysis reductions + tee),
:mod:`repro.streaming.pipeline` (the coupled functional/scaled drivers).
"""

from repro.streaming.consumers import (
    ANALYSIS_RATE,
    CheckpointTee,
    InSituConsumer,
    MomentsConsumer,
    TimeseriesConsumer,
)
from repro.streaming.pipeline import (
    InSituRunReport,
    StreamingBit1Writer,
    StreamingRunResult,
    run_insitu,
    run_streaming_scaled,
)
from repro.streaming.staging import ConsumerStats, NetworkPath, StagedTransport

__all__ = [
    "ANALYSIS_RATE",
    "CheckpointTee",
    "ConsumerStats",
    "InSituConsumer",
    "InSituRunReport",
    "MomentsConsumer",
    "NetworkPath",
    "StagedTransport",
    "StreamingBit1Writer",
    "StreamingRunResult",
    "TimeseriesConsumer",
    "run_insitu",
    "run_streaming_scaled",
]
