"""CheckpointPolicy — the tier schedule of a multi-level store.

Intervals count *checkpoints* (store calls), not simulation steps: the
runner already owns the step cadence (``dmpstep``), the policy decides
which of those checkpoints are promoted beyond node-local staging.
``interval=1`` promotes every checkpoint, ``k`` every k-th, ``0`` turns
the tier off.  L0 staging always happens — it is the source every other
tier copies from.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckpointPolicy:
    """Tier schedule, redundancy layout and ring depth of one store.

    ``partner_distance`` is the node offset of the L1 buddy (node ``i``
    replicates to ``(i + distance) % nnodes``); ``group_size`` the
    number of consecutive nodes sharing one L2 XOR parity block (each
    group tolerates one lost member); ``ring_depth`` how many L3
    generations stay on the PFS before the oldest is unlinked.
    ``async_flush`` drains L3 writes in the background (the BP5
    ``AsyncWrite`` idiom) instead of stalling the checkpoint step.
    """

    partner_interval: int = 0
    partner_distance: int = 1
    xor_interval: int = 0
    group_size: int = 4
    l3_interval: int = 1
    ring_depth: int = 2
    async_flush: bool = True

    def __post_init__(self) -> None:
        for name in ("partner_interval", "xor_interval", "l3_interval"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0 (0 disables the tier)")
        if self.partner_interval and self.partner_distance < 1:
            raise ValueError("partner_distance must be >= 1")
        if self.xor_interval and self.group_size < 2:
            raise ValueError("group_size must be >= 2")
        if self.l3_interval and self.ring_depth < 1:
            raise ValueError("ring_depth must be >= 1 when L3 is enabled")

    # -- tier schedule -------------------------------------------------------

    def _due(self, interval: int, index: int) -> bool:
        return interval > 0 and index % interval == 0

    def partner_due(self, index: int) -> bool:
        """Does checkpoint number ``index`` (0-based) get an L1 copy?"""
        return self._due(self.partner_interval, index)

    def xor_due(self, index: int) -> bool:
        return self._due(self.xor_interval, index)

    def l3_due(self, index: int) -> bool:
        return self._due(self.l3_interval, index)

    # -- common configurations ----------------------------------------------

    @classmethod
    def pfs_only(cls, ring_depth: int = 2,
                 async_flush: bool = True) -> "CheckpointPolicy":
        """Single-level baseline: every checkpoint straight to Lustre."""
        return cls(l3_interval=1, ring_depth=ring_depth,
                   async_flush=async_flush)

    @classmethod
    def partner(cls, distance: int = 1, l3_interval: int = 4,
                ring_depth: int = 2) -> "CheckpointPolicy":
        """L1 buddy replication with a periodic L3 backstop."""
        return cls(partner_interval=1, partner_distance=distance,
                   l3_interval=l3_interval, ring_depth=ring_depth)

    @classmethod
    def xor_group(cls, group_size: int = 4, l3_interval: int = 4,
                  ring_depth: int = 2) -> "CheckpointPolicy":
        """L2 XOR parity groups with a periodic L3 backstop."""
        return cls(xor_interval=1, group_size=group_size,
                   l3_interval=l3_interval, ring_depth=ring_depth)

    def label(self) -> str:
        """Compact human-readable tier summary (for reports/sweeps)."""
        tiers = ["L0"]
        if self.partner_interval:
            tiers.append(f"L1/{self.partner_interval}"
                         f"(d={self.partner_distance})")
        if self.xor_interval:
            tiers.append(f"L2/{self.xor_interval}(g={self.group_size})")
        if self.l3_interval:
            tiers.append(f"L3/{self.l3_interval}(ring={self.ring_depth}"
                         f"{',async' if self.async_flush else ''})")
        return "+".join(tiers)
