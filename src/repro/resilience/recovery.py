"""Failure-domain-aware recovery over a MultiLevelStore.

The planner scopes the restore to what the crash actually destroyed:

========================  =========================================
failure domain            recovery source
========================  =========================================
crash inside redundancy   memory tiers — survivors reload their own
(partner/parity covers    L0 shard, crashed nodes rebuild from the
every lost node)          L1 partner copy or L2 XOR parity; **zero**
                          PFS traffic
crash beyond redundancy   newest L3 generation whose async flush had
(buddy pair lost, two     landed by crash time, CRC-verified; a
group members lost, …)    refused file walks back through the ring
ring exhausted /          scratch restart from step 0
all L3 refused
========================  =========================================

Memory-tier rebuild traffic is emitted as ``rebuild`` events on the
``faults`` layer (Darshan-invisible, as real node-local recovery would
be); the L3 path reads through PosixIO and is Darshan-visible.
"""

from __future__ import annotations

import base64
import json
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.io_adaptor.checkpoint import apply_node_state
from repro.resilience.store import (
    CheckpointGeneration,
    MultiLevelStore,
    RingCheckpointError,
)

#: recovery sources ordered cheapest-first; a mixed-source plan reports
#: the most expensive tier any *crashed* node needed
_TIER_ORDER = ("l0", "l1-partner", "l2-xor")


@dataclass
class RecoveryOutcome:
    """What one recovery did: where it restored from, at what cost."""

    step: int
    generation: int
    source: str               # "l0" | "l1-partner" | "l2-xor" | "l3"
    pfs_bytes_read: int = 0
    #: ring generations refused on the way here (CRC failures), as
    #: (generation id, error message) pairs
    refused: list[tuple[int, str]] = field(default_factory=list)


def recover(store: MultiLevelStore, sim, failed_nodes) -> RecoveryOutcome | None:
    """Restore ``sim`` from the cheapest tier that survives the crash.

    Returns None when nothing recoverable remains (scratch restart is
    the caller's job).  ``fail_nodes`` must already have been applied to
    the store so the planner sees the post-crash tier state.
    """
    failed = {int(n) for n in np.atleast_1d(np.asarray(failed_nodes))}
    comm = store.comm
    refused: list[tuple[int, str]] = []

    gen = store.latest
    if gen is not None:
        sources = gen.memory_sources(failed)
        if sources is not None:
            _restore_from_memory(store, sim, gen, sources, failed)
            worst = max(
                (sources[n] for n in sorted(sources) if n in failed),
                key=_TIER_ORDER.index, default="l0")
            return RecoveryOutcome(step=gen.step, generation=gen.generation,
                                   source=worst, refused=refused)

    # beyond redundancy: walk the L3 ring, newest generation first.  A
    # flush still in flight at crash time never landed — skip it.
    t_crash = comm.max_time()
    for gen in reversed(store.generations):
        if gen.l3_path is None or gen.l3_ready_at > t_crash:
            continue
        try:
            nbytes = _restore_from_l3(store, sim, gen)
        except RingCheckpointError as exc:
            refused.append((gen.generation, str(exc)))
            continue
        return RecoveryOutcome(step=gen.step, generation=gen.generation,
                               source="l3", pfs_bytes_read=nbytes,
                               refused=refused)
    if refused:
        # surface the walk-back even though it ended at scratch
        return RecoveryOutcome(step=0, generation=-1, source="scratch",
                               refused=refused)
    return None


def _restore_from_memory(store: MultiLevelStore, sim,
                         gen: CheckpointGeneration,
                         sources: dict[int, str], failed: set[int]) -> None:
    comm = store.comm
    shm_bw = comm.shm_bandwidth()
    for node, source in sorted(sources.items()):
        blob = gen.rebuild_shard(node)
        ranks = comm.ranks_on_node(node)
        if source == "l0":
            cost = len(blob) / shm_bw
            api = "L0"
        elif source == "l1-partner":
            # the replacement node pulls the replica from the buddy
            cost = comm.transfer_seconds(len(blob))
            api = "L1"
        else:  # l2-xor: stream the survivors + parity through XOR
            group = next(g for g in gen.xor_groups if node in g)
            cost = comm.transfer_seconds(len(blob)) * max(1, len(group) - 1)
            api = "L2"
        store.posix._charge(ranks, cost)
        store._emit("rebuild", ranks, api=api,
                    nbytes=len(blob) / max(1, len(ranks)), duration=cost)
        apply_node_state(sim, blob)
        if store.hybrid is not None:
            # device-resident state: pay the H2D restore onto the
            # (replacement) node's devices after the host copy lands
            h2d = store.hybrid.h2d_node(node, len(blob))
            store.posix._charge(ranks, h2d)
            store._emit("h2d", ranks, api="GPU",
                        nbytes=len(blob) / max(1, len(ranks)),
                        duration=h2d, layer="gpu")
    sim.rng.restore(gen.rng_blob)
    sim.step_index = gen.step


def _restore_from_l3(store: MultiLevelStore, sim,
                     gen: CheckpointGeneration) -> int:
    """Read one ring file back through the PFS; raises on CRC refusal."""
    posix = store.posix
    path = gen.l3_path
    fd = posix.open(0, path)
    size = posix.fs.vfs.size_of(posix._fds[fd].ino)
    raw = posix.read(0, fd, size)
    posix.close(0, fd)
    try:
        nl = raw.index(b"\n")
        header = json.loads(raw[:nl].decode())
        body = raw[nl + 1:]
        if zlib.crc32(body) != int(header["body_crc"]):
            raise RingCheckpointError(
                f"ring generation {gen.generation}: body checksum mismatch "
                f"— checkpoint refused",
                path=path, generation=gen.generation,
                expected=int(header["body_crc"]), actual=zlib.crc32(body))
        rng_blob = base64.b64decode(header["rng"])
        pos = 0
        for node, length in zip(header["nodes"], header["lengths"]):
            apply_node_state(sim, body[pos:pos + length])
            if store.hybrid is not None:
                ranks = store.comm.ranks_on_node(node)
                h2d = store.hybrid.h2d_node(node, length)
                store.posix._charge(ranks, h2d)
                store._emit("h2d", ranks, api="GPU",
                            nbytes=length / max(1, len(ranks)),
                            duration=h2d, layer="gpu")
            pos += length
    except (ValueError, KeyError) as exc:
        raise RingCheckpointError(
            f"ring generation {gen.generation}: unreadable header ({exc})",
            path=path, generation=gen.generation) from exc
    sim.rng.restore(rng_blob)
    sim.step_index = int(header["step"])
    store._emit("rebuild", np.asarray([0]), api="L3", nbytes=size)
    return size
