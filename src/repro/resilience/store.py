"""MultiLevelStore — tiered checkpoint staging over the virtual cluster.

Every checkpoint is first staged node-locally (**L0**, memory speed,
charged to the ``resilience`` memory account), then promoted per the
:class:`~repro.resilience.policy.CheckpointPolicy`:

- **L1** copies each node's shard to a buddy node over the NIC;
- **L2** folds each node group's shards into one XOR parity block
  (ring-reduce at NIC speed) — any single lost member per group is
  rebuildable from the survivors plus parity;
- **L3** serialises the whole generation into an fsynced file on the
  parallel filesystem, drained asynchronously behind compute (the BP5
  ``AsyncWrite`` idiom via :meth:`~repro.fs.posix.PosixIO.
  write_scheduled`) and retained as a ring of generations.

Tier traffic that never touches the PFS is emitted as ``ckpt_store`` /
``ckpt_flush`` / ``rebuild`` events on the ``faults`` layer — invisible
to the Darshan fold, exactly as node-local staging is invisible to real
Darshan — while L3 bytes go through PosixIO and are counted normally.
With a hybrid stager attached (:class:`repro.gpu.hybrid.HybridStager`),
device checkpoints additionally pay the D2H drain into L0 (``d2h``
events on the ``gpu`` layer) and the H2D restore at recovery.
"""

from __future__ import annotations

import base64
import json
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.fs.payload import RealPayload
from repro.fs.posix import PosixIO
from repro.io_adaptor.checkpoint import serialize_node_state
from repro.mem import current_budget
from repro.mpi.comm import VirtualComm
from repro.resilience.policy import CheckpointPolicy

#: stdio-style chunking of the L3 generation file
L3_CHUNK = 4 << 20


class RingCheckpointError(RuntimeError):
    """An L3 generation file failed its checksum during recovery."""

    def __init__(self, message: str, *, path: str, generation: int,
                 expected: int | None = None, actual: int | None = None):
        super().__init__(message)
        self.context = {"path": path, "generation": generation,
                        "expected": expected, "actual": actual}


@dataclass
class CheckpointGeneration:
    """One stored checkpoint: per-node shards plus redundancy state.

    ``shards`` maps node → serialized state (dropped for crashed nodes
    by :meth:`MultiLevelStore.fail_nodes`); ``partner_copies`` maps an
    *owner* node to the replica of its shard hosted on
    ``partner_host[owner]``.  ``xor_parity`` holds one XOR block per
    node group; a group can rebuild at most one lost member.
    ``l3_ready_at`` is the virtual time the async flush completes —
    a crash before that instant finds no usable PFS copy.
    """

    generation: int
    step: int
    rng_blob: bytes
    shards: dict[int, bytes] = field(default_factory=dict)
    shard_crc: dict[int, int] = field(default_factory=dict)
    partner_copies: dict[int, bytes] = field(default_factory=dict)
    partner_host: dict[int, int] = field(default_factory=dict)
    xor_groups: list[tuple[int, ...]] = field(default_factory=list)
    xor_parity: dict[int, bytes] = field(default_factory=dict)
    xor_lengths: dict[int, dict[int, int]] = field(default_factory=dict)
    l3_path: str | None = None
    l3_ready_at: float = float("inf")
    #: resident bytes billed to the ``resilience`` account for this
    #: generation (released when its memory tiers are evicted)
    resident_bytes: int = 0

    def lost_members(self, group: tuple[int, ...]) -> list[int]:
        return [n for n in group if n not in self.shards]

    def memory_sources(self, failed_nodes: set[int]) -> dict[int, str] | None:
        """node → tier that can produce its shard without PFS traffic.

        None when any node is unrecoverable from the memory tiers —
        the failure exceeded the redundancy level for this generation.
        """
        sources: dict[int, str] = {}
        all_nodes = set(self.shards) | set(self.partner_copies) | {
            n for g in self.xor_groups for n in g} | failed_nodes
        for node in sorted(all_nodes):
            if node in self.shards and node not in failed_nodes:
                sources[node] = "l0"
            elif node in self.partner_copies:
                sources[node] = "l1-partner"
            else:
                group = next((g for g in self.xor_groups if node in g), None)
                if (group is not None and group[0] in self.xor_parity
                        and self.lost_members(group) == [node]):
                    sources[node] = "l2-xor"
                else:
                    return None
        return sources

    def rebuild_shard(self, node: int) -> bytes:
        """Recover one node's shard from partner or parity."""
        if node in self.shards:
            return self.shards[node]
        if node in self.partner_copies:
            return self.partner_copies[node]
        group = next(g for g in self.xor_groups if node in g)
        lengths = self.xor_lengths[group[0]]
        parity = bytearray(self.xor_parity[group[0]])
        width = len(parity)
        for other in group:
            if other == node:
                continue
            blob = self.shards[other]
            pad = np.frombuffer(blob.ljust(width, b"\0"), dtype=np.uint8)
            arr = np.frombuffer(parity, dtype=np.uint8)
            parity = bytearray(np.bitwise_xor(arr, pad).tobytes())
        return bytes(parity[: lengths[node]])


class MultiLevelStore:
    """Tiered checkpoint store bound to one run's posix/comm stack."""

    def __init__(self, posix: PosixIO, comm: VirtualComm, outdir: str,
                 policy: CheckpointPolicy, hybrid=None):
        self.posix = posix
        self.comm = comm
        self.outdir = outdir.rstrip("/")
        self.policy = policy
        #: optional :class:`repro.gpu.hybrid.HybridStager` — when set,
        #: the simulation state is device-resident: L0 staging pays the
        #: D2H drain first, tier recovery pays the H2D restore after
        self.hybrid = hybrid
        self.ring_dir = f"{self.outdir}/.ring"
        self._account = current_budget().account("resilience")
        self._generations: list[CheckpointGeneration] = []  # oldest first
        self._count = 0          # store() calls, drives the tier schedule
        self._flush_end = 0.0    # virtual end time of the last L3 drain
        self.flush_wait_seconds = 0.0
        self.flush_seconds = 0.0
        if not posix.exists(self.ring_dir):
            posix.mkdir(0, self.ring_dir, parents=True)

    # -- event plumbing ------------------------------------------------------

    def _emit(self, kind: str, ranks: np.ndarray, *, api: str,
              nbytes=0.0, duration=0.0, start=None,
              layer: str = "faults") -> None:
        bus = self.posix.trace
        if bus is None or not bus.wants(kind):
            return
        if start is None:
            ranks = np.atleast_1d(np.asarray(ranks))
            start = self.comm.clocks[ranks] - np.broadcast_to(
                np.asarray(duration, dtype=np.float64), ranks.shape)
        bus.emit(kind, ranks, nbytes=nbytes, duration=duration, start=start,
                 api=api, layer=layer)

    def _charge_node(self, node: int, seconds: float, *, api: str,
                     kind: str, nbytes: int, layer: str = "faults") -> None:
        ranks = self.comm.ranks_on_node(node)
        self.posix._charge(ranks, seconds)
        self._emit(kind, ranks, api=api, nbytes=nbytes / max(1, len(ranks)),
                   duration=seconds, layer=layer)

    # -- store ---------------------------------------------------------------

    @property
    def generations(self) -> list[CheckpointGeneration]:
        return list(self._generations)

    @property
    def latest(self) -> CheckpointGeneration | None:
        return self._generations[-1] if self._generations else None

    def store(self, sim, step: int) -> CheckpointGeneration:
        """Stage one checkpoint through the policy's tier schedule."""
        index = self._count
        self._count += 1
        policy = self.policy
        comm = self.comm
        gen = CheckpointGeneration(generation=index, step=int(step),
                                   rng_blob=sim.rng.snapshot())

        # L0: node-local staging at memory speed
        shm_bw = comm.shm_bandwidth()
        for node in range(comm.nnodes):
            ranks = comm.ranks_on_node(node)
            if not len(ranks):
                continue
            blob = serialize_node_state(sim, ranks)
            gen.shards[node] = blob
            gen.shard_crc[node] = zlib.crc32(blob)
            gen.resident_bytes += len(blob)
            if self.hybrid is not None:
                # device-resident state drains over the host link first
                self._charge_node(
                    node, self.hybrid.d2h_node(node, len(blob)),
                    api="GPU", kind="d2h", nbytes=len(blob), layer="gpu")
            self._charge_node(node, len(blob) / shm_bw, api="L0",
                              kind="ckpt_store", nbytes=len(blob))

        # L1: partner replication over the NIC
        if policy.partner_due(index):
            nnodes = comm.nnodes
            for node, blob in gen.shards.items():
                host = (node + policy.partner_distance) % nnodes
                if host == node:
                    continue  # single-node job: no buddy to copy to
                gen.partner_copies[node] = blob
                gen.partner_host[node] = host
                gen.resident_bytes += len(blob)
                self._charge_node(node, comm.transfer_seconds(len(blob)),
                                  api="L1", kind="ckpt_store",
                                  nbytes=len(blob))

        # L2: XOR parity per node group (ring-reduce at NIC speed)
        if policy.xor_due(index):
            nodes = sorted(gen.shards)
            for lo in range(0, len(nodes), policy.group_size):
                group = tuple(nodes[lo:lo + policy.group_size])
                if len(group) < 2:
                    continue
                gen.xor_groups.append(group)
                width = max(len(gen.shards[n]) for n in group)
                parity = np.zeros(width, dtype=np.uint8)
                for n in group:
                    blob = gen.shards[n]
                    parity ^= np.frombuffer(blob.ljust(width, b"\0"),
                                            dtype=np.uint8)
                gen.xor_parity[group[0]] = parity.tobytes()
                gen.xor_lengths[group[0]] = {
                    n: len(gen.shards[n]) for n in group}
                gen.resident_bytes += width
                for n in group:
                    self._charge_node(
                        n, comm.transfer_seconds(len(gen.shards[n])),
                        api="L2", kind="ckpt_store",
                        nbytes=len(gen.shards[n]))

        self._account.charge(gen.resident_bytes)

        # L3: serialize the generation onto the PFS (ring of files)
        if policy.l3_due(index):
            self._flush_l3(gen)

        # memory tiers live for the latest generation only (the SCR
        # cache); older generations persist solely through the L3 ring
        for old in self._generations:
            self._evict_memory(old)
        self._generations.append(gen)
        self._trim_ring()
        return gen

    # -- L3 flush / ring -----------------------------------------------------

    def _l3_payload(self, gen: CheckpointGeneration) -> bytes:
        nodes = sorted(gen.shards)
        body = b"".join(gen.shards[n] for n in nodes)
        header = {
            "generation": gen.generation,
            "step": gen.step,
            "rng": base64.b64encode(gen.rng_blob).decode("ascii"),
            "nodes": nodes,
            "lengths": [len(gen.shards[n]) for n in nodes],
            "body_crc": zlib.crc32(body),
        }
        return (json.dumps(header) + "\n").encode() + body

    def _flush_l3(self, gen: CheckpointGeneration) -> None:
        posix = self.posix
        payload = self._l3_payload(gen)
        gen.l3_path = f"{self.ring_dir}/gen{gen.generation:06d}.l3"
        fd = posix.open(0, gen.l3_path, create=True, truncate=True)
        if not self.policy.async_flush:
            posix.write(0, fd, RealPayload(payload, "particle_float32"),
                        chunk_size=L3_CHUNK, sync_each_chunk=True)
            posix.close(0, fd)
            gen.l3_ready_at = float(self.comm.clocks[0])
            self._emit("ckpt_flush", np.asarray([0]), api="L3",
                       nbytes=len(payload))
            return
        # async drain: the flush runs in the background, serialized
        # after any still-running drain; the checkpointing rank stalls
        # only when it catches an unfinished flush (the staging buffer
        # holds one generation, as the BP5 AsyncWrite path holds one
        # subfile batch)
        now = float(self.comm.clocks[0])
        wait = max(0.0, self._flush_end - now)
        if wait > 0.0:
            posix._charge(0, wait)
            self.flush_wait_seconds += wait
            self._emit("ckpt_flush", np.asarray([0]), api="WAIT",
                       duration=wait)
            now += wait
        start = max(now, self._flush_end)
        cost = posix.write_scheduled(
            0, fd, RealPayload(payload, "particle_float32"),
            start_at=start, chunk_size=L3_CHUNK, sync_each_chunk=True)
        posix.close(0, fd)
        self._flush_end = start + cost
        self.flush_seconds += cost
        gen.l3_ready_at = self._flush_end
        self._emit("ckpt_flush", np.asarray([0]), api="L3",
                   nbytes=len(payload), duration=cost, start=start)

    def settle_flushes(self) -> None:
        """Block until the last async flush lands (run finalisation)."""
        now = float(self.comm.clocks[0])
        if self._flush_end > now:
            self.posix._charge(0, self._flush_end - now)

    def _trim_ring(self) -> None:
        keep_l3 = [g for g in self._generations if g.l3_path is not None]
        while len(keep_l3) > self.policy.ring_depth:
            victim = keep_l3.pop(0)
            if self.posix.exists(victim.l3_path):
                self.posix.unlink(0, victim.l3_path)
            victim.l3_path = None
        # drop generations that retain no tier at all (memory evicted,
        # no L3 file): nothing can be recovered from them
        self._generations = [
            g for g in self._generations
            if g is self.latest_ref() or g.l3_path is not None]

    def latest_ref(self) -> CheckpointGeneration | None:
        return self._generations[-1] if self._generations else None

    def _evict_memory(self, gen: CheckpointGeneration) -> None:
        if gen.resident_bytes:
            self._account.release(gen.resident_bytes)
            gen.resident_bytes = 0
        gen.shards.clear()
        gen.partner_copies.clear()
        gen.partner_host.clear()
        gen.xor_parity.clear()
        gen.xor_groups.clear()
        gen.xor_lengths.clear()

    # -- failure bookkeeping -------------------------------------------------

    def fail_nodes(self, nodes) -> None:
        """Drop every tier resident on the crashed nodes.

        L0 shards of the crashed nodes are gone; so are partner copies
        *hosted* on them (an L1 replica is only as durable as its
        host).  XOR parity is distributed across the group, so it
        survives exactly when the group lost at most one member — the
        recovery planner checks that condition, not this method.
        """
        failed = {int(n) for n in np.atleast_1d(np.asarray(nodes))}
        # an async flush still in flight died with the job: the PFS file
        # is torn, so recovery (this crash's or any later one's) must
        # never read it.  The bytes stay in the census — a real torn
        # file lingers until cleanup — but the ring forgets it.
        now = self.comm.max_time()
        for gen in self._generations:
            if gen.l3_path is not None and gen.l3_ready_at > now:
                gen.l3_path = None
        self._flush_end = min(self._flush_end, now)
        for gen in self._generations:
            freed = 0
            for node in list(gen.shards):
                if node in failed:
                    freed += len(gen.shards.pop(node))
                    gen.shard_crc.pop(node, None)
            for owner in list(gen.partner_copies):
                if gen.partner_host.get(owner) in failed:
                    freed += len(gen.partner_copies.pop(owner))
                    gen.partner_host.pop(owner, None)
            if freed:
                self._account.release(min(freed, gen.resident_bytes))
                gen.resident_bytes = max(0, gen.resident_bytes - freed)
