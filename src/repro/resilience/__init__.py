"""Multi-level checkpointing and failure-domain-aware recovery.

The SCR/VeloC pattern (Moody et al., SC'10; Nicolae et al., CCGrid'19)
applied to the virtual cluster: checkpoints are staged through a
hierarchy of progressively slower, progressively more failure-tolerant
tiers, and recovery reads from the *cheapest tier that survives the
failure domain* —

- **L0** node-local staging (memory-speed, lost with the node),
- **L1** partner replication to a buddy node over the NIC,
- **L2** XOR parity groups (any single node per group rebuildable),
- **L3** the fsynced Lustre path, flushed asynchronously and retained
  as a ring of generations.

A single-node crash inside redundancy never touches the PFS; only
failures exceeding the redundancy level (or CRC-refused L3 files) walk
back through the ring before a scratch restart.
"""

from repro.resilience.policy import CheckpointPolicy
from repro.resilience.store import CheckpointGeneration, MultiLevelStore
from repro.resilience.recovery import RecoveryOutcome

__all__ = [
    "CheckpointPolicy",
    "CheckpointGeneration",
    "MultiLevelStore",
    "RecoveryOutcome",
]
