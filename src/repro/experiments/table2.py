"""Table II — file census: count, average and maximum size per config.

Four configurations over 1-200 nodes on Dardel:

* BIT1 Original I/O (2 files per rank + 6 globals);
* BIT1 openPMD + BP4 (default aggregation: one diag subfile per node,
  one checkpoint subfile);
* + 1 AGGR (``OPENPMD_ADIOS2_BP5_NumAgg = 1``: constant 6 files);
* + Blosc + 1 AGGR (same layout, ~11% → ~3.7% smaller).

The counts follow closed forms (``2·ranks+6``, ``nodes+5``, ``6``); the
sizes come from walking the virtual filesystem after each run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.presets import dardel
from repro.darshan.report import FileStats
from repro.experiments.common import resolve_machine
from repro.experiments.paper_data import NODE_COUNTS, TABLE2
from repro.experiments.points import openpmd_report, original_report
from repro.experiments.sweep import sweep
from repro.util.tables import Table
from repro.util.units import format_size

#: the sweep-point options behind each Table II configuration
CONFIG_OPTIONS = {
    "original": {},
    "bp4_default": {},
    "bp4_1aggr": {"num_aggregators": 1},
    "bp4_blosc_1aggr": {"num_aggregators": 1, "compressor": "blosc"},
}

CONFIG_LABELS = {
    "original": "BIT1 Original I/O",
    "bp4_default": "BIT1 openPMD + BP4",
    "bp4_1aggr": "BIT1 openPMD + BP4 + 1 AGGR",
    "bp4_blosc_1aggr": "BIT1 openPMD + BP4 + Blosc + 1 AGGR",
}


@dataclass
class Table2Result:
    """Census per configuration per node count."""

    machine: str
    node_counts: tuple[int, ...]
    stats: dict[str, dict[int, FileStats]]

    def to_tables(self) -> list[Table]:
        out = []
        for key, label in CONFIG_LABELS.items():
            if key not in self.stats:
                continue
            t = Table(["metric", *[str(n) for n in self.node_counts]],
                      title=f"Table II ({label}) on {self.machine}")
            per = self.stats[key]
            t.add_row(["Total Written Files",
                       *[per[n].total_files for n in self.node_counts]])
            t.add_row(["Average File Size",
                       *[format_size(per[n].avg_size_bytes)
                         for n in self.node_counts]])
            t.add_row(["Max File Size",
                       *[format_size(per[n].max_size_bytes)
                         for n in self.node_counts]])
            paper = TABLE2.get(key)
            if paper:
                t.add_row(["paper files",
                           *[paper["files"].get(n, "-")
                             for n in self.node_counts]])
                t.add_row(["paper avg",
                           *[format_size(paper["avg"][n])
                             if n in paper["avg"] else "-"
                             for n in self.node_counts]])
            out.append(t)
        return out

    def render(self) -> str:
        return "\n\n".join(t.render() for t in self.to_tables())


def run_table2(node_counts: Sequence[int] = NODE_COUNTS,
               configs: Sequence[str] = tuple(CONFIG_LABELS),
               machine=None, seed: int = 0) -> Table2Result:
    """Reproduce the Table II census."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    node_counts = tuple(node_counts)
    for key in configs:
        if key not in CONFIG_LABELS:
            raise KeyError(f"unknown Table II config {key!r}; "
                           f"choose from {sorted(CONFIG_LABELS)}")
    stats: dict[str, dict[int, FileStats]] = {}
    orig_keys = [k for k in configs if k == "original"]
    bp4_keys = [k for k in configs if k != "original"]
    if orig_keys:
        reports = iter(sweep(original_report,
                             [{"machine": machine, "nodes": n, "seed": seed}
                              for k in orig_keys for n in node_counts]))
        for key in orig_keys:
            stats[key] = {n: next(reports)["files"] for n in node_counts}
    if bp4_keys:
        reports = iter(sweep(openpmd_report,
                             [{"machine": machine, "nodes": n, "seed": seed,
                               **CONFIG_OPTIONS[k]}
                              for k in bp4_keys for n in node_counts]))
        for key in bp4_keys:
            stats[key] = {n: next(reports)["files"] for n in node_counts}
    # present in the canonical CONFIG_LABELS order regardless of sweep order
    stats = {k: stats[k] for k in configs if k in stats}
    return Table2Result(machine=machine.name, node_counts=node_counts,
                        stats=stats)


def main() -> None:  # pragma: no cover
    print(run_table2().render())


if __name__ == "__main__":  # pragma: no cover
    main()
