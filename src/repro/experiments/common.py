"""Shared plumbing for the per-figure experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.machine import Machine
from repro.cluster.presets import machine_by_name
from repro.util.tables import Table


@dataclass
class SeriesResult:
    """One plotted line: (x, y) pairs plus identity."""

    label: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)

    def add(self, x, y) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x):
        return self.ys[self.xs.index(x)]

    def peak(self) -> tuple:
        """(x, y) of the maximum y."""
        i = max(range(len(self.ys)), key=lambda j: self.ys[j])
        return self.xs[i], self.ys[i]


@dataclass
class ExperimentResult:
    """A whole figure/table: named series over a shared x axis."""

    name: str
    x_name: str
    series: list[SeriesResult] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def get(self, label: str) -> SeriesResult:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"{self.name} has no series {label!r}; "
                       f"available: {[s.label for s in self.series]}")

    def to_table(self, y_format: Callable = lambda v: f"{v:.3f}") -> Table:
        xs = self.series[0].xs if self.series else []
        table = Table([self.x_name, *[s.label for s in self.series]],
                      title=self.name)
        for i, x in enumerate(xs):
            table.add_row([x, *[y_format(s.ys[i]) for s in self.series]])
        return table

    def render(self, y_format: Callable = lambda v: f"{v:.3f}") -> str:
        out = self.to_table(y_format).render()
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def resolve_machine(machine: str | Machine) -> Machine:
    if isinstance(machine, Machine):
        return machine
    return machine_by_name(machine)


def subset(values: Sequence, quick: bool) -> tuple:
    """Reduced sweep for quick/test runs: endpoints plus the middle."""
    values = tuple(values)
    if not quick or len(values) <= 3:
        return values
    return (values[0], values[len(values) // 2], values[-1])
