"""Fig. 9 — write time vs Lustre stripe size × OST count.

BP4 + Blosc + 1 aggregator on 200 nodes, sweeping stripe sizes
(1-16 MiB) and stripe counts (1-48 OSTs).  The metric is the mean
seconds per write operation (Darshan ``F_WRITE_TIME / WRITES``), which
is where the paper's millisecond-scale values live.  "Smaller Lustre
stripe sizes tend to yield better performance … the relationship between
Lustre stripe size and write time varies significantly based on the
number of OSTs employed … these trends are not uniform across all
configurations."

Note: the paper's prose calls 0.0089 s at a 16 MiB stripe "optimal"
while also saying smaller stripes perform better — the two statements
conflict; the reproduction follows the mechanism (per-RPC cost scales
with the bounded RPC size) and reports the full grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.presets import dardel
from repro.experiments.common import resolve_machine
from repro.experiments.paper_data import (
    FIG9_BEST_SECONDS,
    FIG9_STRIPE_COUNTS,
    FIG9_STRIPE_SIZES,
)
from repro.experiments.points import openpmd_report
from repro.experiments.sweep import sweep
from repro.util.tables import Table
from repro.util.units import format_size


@dataclass
class Fig9Result:
    """The (stripe_size × stripe_count) grid of write times."""

    machine: str
    nodes: int
    stripe_sizes: tuple[int, ...]
    stripe_counts: tuple[int, ...]
    seconds: np.ndarray  # [size_index, count_index]

    def best(self) -> tuple[int, int, float]:
        """(stripe_size, stripe_count, seconds) of the grid minimum."""
        i, j = np.unravel_index(np.argmin(self.seconds), self.seconds.shape)
        return (self.stripe_sizes[i], self.stripe_counts[j],
                float(self.seconds[i, j]))

    def at(self, stripe_size: int, stripe_count: int) -> float:
        i = self.stripe_sizes.index(stripe_size)
        j = self.stripe_counts.index(stripe_count)
        return float(self.seconds[i, j])

    def to_table(self) -> Table:
        t = Table(["stripe size", *[f"{c} OST" for c in self.stripe_counts]],
                  title=f"Fig 9: Mean seconds per write op on {self.machine} "
                        f"({self.nodes} nodes, Blosc + 1 AGGR)")
        for i, size in enumerate(self.stripe_sizes):
            t.add_row([format_size(size),
                       *[f"{self.seconds[i, j]:.5f}"
                         for j in range(len(self.stripe_counts))]])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        size, count, secs = self.best()
        out += (f"\n  best: {secs:.5f}s at stripe size {format_size(size)}, "
                f"{count} OSTs (paper best: {FIG9_BEST_SECONDS}s)")
        return out


def run_fig9(stripe_sizes: Sequence[int] = FIG9_STRIPE_SIZES,
             stripe_counts: Sequence[int] = FIG9_STRIPE_COUNTS,
             nodes: int = 200, machine=None, seed: int = 0) -> Fig9Result:
    """Reproduce the Lustre striping grid."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    stripe_sizes = tuple(stripe_sizes)
    stripe_counts = tuple(stripe_counts)
    reports = sweep(openpmd_report,
                    [{"machine": machine, "nodes": nodes,
                      "num_aggregators": 1, "compressor": "blosc",
                      "stripe_count": count, "stripe_size": size,
                      "seed": seed}
                     for size in stripe_sizes for count in stripe_counts])
    grid = np.array([rep["seconds_per_write"] for rep in reports]).reshape(
        len(stripe_sizes), len(stripe_counts))
    return Fig9Result(machine=machine.name, nodes=nodes,
                      stripe_sizes=stripe_sizes,
                      stripe_counts=stripe_counts, seconds=grid)


def main() -> None:  # pragma: no cover
    print(run_fig9().render())


if __name__ == "__main__":  # pragma: no cover
    main()
