"""Resilience sweep — MTBF × checkpoint interval on the dardel preset.

The paper's §VI names "continuing with checkpoint restarts towards
evaluating and improving resilience capabilities" as the next step; this
driver is that evaluation.  It answers the operational question behind
every ``dmpstep`` choice: given a machine failure rate, how often should
BIT1 checkpoint?

Method:

1. **Measure** the per-checkpoint wall cost on the virtual machine: two
   scaled openPMD runs of the same config, one with checkpoints on the
   paper's cadence and one with checkpointing disabled; the wall-time
   delta divided by the checkpoint count is the measured cost (the
   second run also carries a ``summary`` trace whose per-layer breakdown
   lands in the notes).
2. **Replay** a seeded failure timeline (exponential inter-failure times
   per MTBF, drawn from a named RNG stream, so the sweep is exactly
   reproducible) against each checkpoint interval: completed work
   advances block by block, a crash rolls back to the last checkpoint
   and pays a restart penalty, and the run completes when the paper's
   200K steps are done.

Reported per (MTBF, interval): crash count, checkpoint overhead, lost
(re-executed) work, time-to-solution, and waste relative to the
failure-free, checkpoint-free ideal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.presets import dardel
from repro.experiments.common import resolve_machine, subset
from repro.util.rng import make_rng
from repro.util.tables import Table
from repro.workloads.presets import paper_use_case
from repro.workloads.runner import run_openpmd_scaled

#: MTBF sweep, hours (machine-wide failure rate seen by the job)
MTBF_HOURS = (2.0, 6.0, 24.0)
#: checkpoint-interval sweep, steps (the ``dmpstep`` candidates)
CKPT_INTERVALS = (1_000, 5_000, 10_000, 20_000)
#: nominal compute seconds per step for the 200K-step job (the scaled
#: runs charge only I/O; this stands in for the PIC cycle itself)
COMPUTE_SECONDS_PER_STEP = 0.05
#: seconds to requeue, relaunch and restore after a crash
RESTART_PENALTY_SECONDS = 120.0


@dataclass
class ResilienceRow:
    """One (MTBF, interval) cell of the sweep."""

    mtbf_hours: float
    interval: int
    n_crashes: int
    ckpt_overhead_s: float
    lost_work_s: float
    time_to_solution_s: float
    wasted_pct: float


@dataclass
class ResilienceResult:
    """The sweep plus the measured checkpoint cost it is built on."""

    machine: str
    nodes: int
    ckpt_cost_s: float
    step_seconds: float
    total_steps: int
    rows: list[ResilienceRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def best_interval(self, mtbf_hours: float) -> int:
        """The interval minimising time-to-solution for one MTBF."""
        rows = [r for r in self.rows if r.mtbf_hours == mtbf_hours]
        if not rows:
            raise KeyError(f"no rows for MTBF {mtbf_hours} h")
        return min(rows, key=lambda r: r.time_to_solution_s).interval

    def to_table(self) -> Table:
        t = Table(["MTBF [h]", "interval", "crashes", "ckpt ovh [s]",
                   "lost work [s]", "TTS [h]", "waste [%]"],
                  title=f"Resilience sweep on {self.machine} "
                        f"({self.nodes} nodes, {self.total_steps} steps)")
        for r in self.rows:
            t.add_row([f"{r.mtbf_hours:g}", r.interval, r.n_crashes,
                       f"{r.ckpt_overhead_s:.1f}", f"{r.lost_work_s:.1f}",
                       f"{r.time_to_solution_s / 3600.0:.3f}",
                       f"{r.wasted_pct:.2f}"])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def _replay(total_steps: int, step_s: float, interval: int,
            ckpt_cost_s: float, mtbf_s: float, rng) -> ResilienceRow:
    """Walk one failure timeline against one checkpoint cadence."""
    wall = 0.0
    completed = 0
    n_crashes = 0
    ckpt_overhead = 0.0
    lost_work = 0.0
    next_fail = wall + float(rng.exponential(mtbf_s))
    while completed < total_steps:
        block = min(interval, total_steps - completed)
        block_time = block * step_s + ckpt_cost_s
        if wall + block_time >= next_fail:
            # the crash interrupts this block: everything since the last
            # checkpoint is lost and the job restarts from it
            lost_work += max(next_fail - wall, 0.0)
            wall = next_fail + RESTART_PENALTY_SECONDS
            next_fail = wall + float(rng.exponential(mtbf_s))
            n_crashes += 1
            continue
        wall += block_time
        completed += block
        ckpt_overhead += ckpt_cost_s
    ideal = total_steps * step_s
    return ResilienceRow(
        mtbf_hours=mtbf_s / 3600.0,
        interval=interval,
        n_crashes=n_crashes,
        ckpt_overhead_s=ckpt_overhead,
        lost_work_s=lost_work,
        time_to_solution_s=wall,
        wasted_pct=100.0 * (wall - ideal) / wall,
    )


def run_resilience(machine=None, nodes: int = 2, quick: bool = False,
                   seed: int = 0,
                   mtbf_hours=MTBF_HOURS,
                   intervals=CKPT_INTERVALS) -> ResilienceResult:
    """Measure the checkpoint cost, then sweep MTBF × interval."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    mtbf_hours = subset(tuple(mtbf_hours), quick)
    intervals = subset(tuple(intervals), quick)

    # measurement config: one short scaled run with the paper's
    # checkpoint cadence, one with checkpointing pushed past last_step
    meas_steps = 2_000 if quick else 10_000
    cfg_ckpt = paper_use_case().with_(last_step=meas_steps,
                                      datfile=1_000, dmpstep=1_000)
    cfg_none = cfg_ckpt.with_(dmpstep=meas_steps * 2)
    res_ckpt = run_openpmd_scaled(machine, nodes, config=cfg_ckpt, seed=seed)
    res_none = run_openpmd_scaled(machine, nodes, config=cfg_none, seed=seed,
                                  trace_mode="summary")
    n_ckpts = meas_steps // cfg_ckpt.dmpstep
    ckpt_cost = max(
        (res_ckpt.comm.max_time() - res_none.comm.max_time()) / n_ckpts, 0.0)

    total_steps = paper_use_case().last_step
    step_s = (COMPUTE_SECONDS_PER_STEP
              + res_none.comm.max_time() / cfg_none.last_step)

    result = ResilienceResult(
        machine=machine.name, nodes=nodes, ckpt_cost_s=ckpt_cost,
        step_seconds=step_s, total_steps=total_steps)
    result.notes.append(
        f"measured checkpoint cost {ckpt_cost:.2f} s, effective step time "
        f"{step_s * 1e3:.2f} ms (incl. {COMPUTE_SECONDS_PER_STEP * 1e3:.0f} "
        f"ms nominal compute), restart penalty "
        f"{RESTART_PENALTY_SECONDS:.0f} s")
    result.notes.append("I/O layer breakdown of the measurement run:")
    result.notes.extend(res_none.trace.render_breakdown().splitlines())

    for mtbf_h in mtbf_hours:
        # one seeded timeline per MTBF, shared across intervals, so the
        # interval comparison sees identical failure times
        for interval in intervals:
            rng = make_rng(seed, "resilience", mtbf_h, interval)
            result.rows.append(_replay(
                total_steps, step_s, int(interval), ckpt_cost,
                mtbf_h * 3600.0, rng))
        best = result.best_interval(mtbf_h)
        result.notes.append(
            f"MTBF {mtbf_h:g} h: best checkpoint interval {best} steps")
    return result


def main() -> None:  # pragma: no cover
    print(run_resilience().render())


if __name__ == "__main__":  # pragma: no cover
    main()
