"""Resilience sweep — MTBF × checkpoint interval on the dardel preset.

The paper's §VI names "continuing with checkpoint restarts towards
evaluating and improving resilience capabilities" as the next step; this
driver is that evaluation.  It answers the operational question behind
every ``dmpstep`` choice: given a machine failure rate, how often should
BIT1 checkpoint?

Method:

1. **Measure** the per-checkpoint wall cost on the virtual machine: two
   scaled openPMD runs of the same config, one with checkpoints on the
   paper's cadence and one with checkpointing disabled; the wall-time
   delta divided by the checkpoint count is the measured cost (the
   second run also carries a ``summary`` trace whose per-layer breakdown
   lands in the notes).
2. **Replay** a seeded failure timeline (exponential inter-failure times
   per MTBF, drawn from a named RNG stream, so the sweep is exactly
   reproducible) against each checkpoint interval: completed work
   advances block by block, a crash rolls back to the last checkpoint
   and pays a restart penalty, and the run completes when the paper's
   200K steps are done.

Reported per (MTBF, interval): crash count, checkpoint overhead, lost
(re-executed) work, time-to-solution, and waste relative to the
failure-free, checkpoint-free ideal.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.presets import dardel
from repro.experiments.common import resolve_machine, subset
from repro.util.rng import make_rng
from repro.util.tables import Table
from repro.workloads.datamodel import Bit1DataModel
from repro.workloads.presets import paper_use_case
from repro.workloads.runner import run_openpmd_scaled

#: MTBF sweep, hours (machine-wide failure rate seen by the job)
MTBF_HOURS = (2.0, 6.0, 24.0)
#: checkpoint-interval sweep, steps (the ``dmpstep`` candidates)
CKPT_INTERVALS = (1_000, 5_000, 10_000, 20_000)
#: nominal compute seconds per step for the 200K-step job (the scaled
#: runs charge only I/O; this stands in for the PIC cycle itself)
COMPUTE_SECONDS_PER_STEP = 0.05
#: seconds to requeue, relaunch and restore after a crash
RESTART_PENALTY_SECONDS = 120.0


@dataclass
class ResilienceRow:
    """One (MTBF, interval) cell of the sweep."""

    mtbf_hours: float
    interval: int
    n_crashes: int
    ckpt_overhead_s: float
    lost_work_s: float
    time_to_solution_s: float
    wasted_pct: float


@dataclass
class ResilienceResult:
    """The sweep plus the measured checkpoint cost it is built on."""

    machine: str
    nodes: int
    ckpt_cost_s: float
    step_seconds: float
    total_steps: int
    rows: list[ResilienceRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def best_interval(self, mtbf_hours: float) -> int:
        """The interval minimising time-to-solution for one MTBF."""
        rows = [r for r in self.rows if r.mtbf_hours == mtbf_hours]
        if not rows:
            raise KeyError(f"no rows for MTBF {mtbf_hours} h")
        return min(rows, key=lambda r: r.time_to_solution_s).interval

    def to_table(self) -> Table:
        t = Table(["MTBF [h]", "interval", "crashes", "ckpt ovh [s]",
                   "lost work [s]", "TTS [h]", "waste [%]"],
                  title=f"Resilience sweep on {self.machine} "
                        f"({self.nodes} nodes, {self.total_steps} steps)")
        for r in self.rows:
            t.add_row([f"{r.mtbf_hours:g}", r.interval, r.n_crashes,
                       f"{r.ckpt_overhead_s:.1f}", f"{r.lost_work_s:.1f}",
                       f"{r.time_to_solution_s / 3600.0:.3f}",
                       f"{r.wasted_pct:.2f}"])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def _replay(total_steps: int, step_s: float, interval: int,
            ckpt_cost_s: float, mtbf_s: float, rng) -> ResilienceRow:
    """Walk one failure timeline against one checkpoint cadence."""
    wall = 0.0
    completed = 0
    n_crashes = 0
    ckpt_overhead = 0.0
    lost_work = 0.0
    next_fail = wall + float(rng.exponential(mtbf_s))
    while completed < total_steps:
        block = min(interval, total_steps - completed)
        block_time = block * step_s + ckpt_cost_s
        if wall + block_time >= next_fail:
            # the crash interrupts this block: everything since the last
            # checkpoint is lost and the job restarts from it
            lost_work += max(next_fail - wall, 0.0)
            wall = next_fail + RESTART_PENALTY_SECONDS
            next_fail = wall + float(rng.exponential(mtbf_s))
            n_crashes += 1
            continue
        wall += block_time
        completed += block
        ckpt_overhead += ckpt_cost_s
    ideal = total_steps * step_s
    return ResilienceRow(
        mtbf_hours=mtbf_s / 3600.0,
        interval=interval,
        n_crashes=n_crashes,
        ckpt_overhead_s=ckpt_overhead,
        lost_work_s=lost_work,
        time_to_solution_s=wall,
        wasted_pct=100.0 * (wall - ideal) / wall,
    )


def run_resilience(machine=None, nodes: int = 2, quick: bool = False,
                   seed: int = 0,
                   mtbf_hours=MTBF_HOURS,
                   intervals=CKPT_INTERVALS) -> ResilienceResult:
    """Measure the checkpoint cost, then sweep MTBF × interval."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    mtbf_hours = subset(tuple(mtbf_hours), quick)
    intervals = subset(tuple(intervals), quick)

    # measurement config: one short scaled run with the paper's
    # checkpoint cadence, one with checkpointing pushed past last_step
    meas_steps = 2_000 if quick else 10_000
    cfg_ckpt = paper_use_case().with_(last_step=meas_steps,
                                      datfile=1_000, dmpstep=1_000)
    cfg_none = cfg_ckpt.with_(dmpstep=meas_steps * 2)
    res_ckpt = run_openpmd_scaled(machine, nodes, config=cfg_ckpt, seed=seed)
    res_none = run_openpmd_scaled(machine, nodes, config=cfg_none, seed=seed,
                                  trace_mode="summary")
    n_ckpts = meas_steps // cfg_ckpt.dmpstep
    ckpt_cost = max(
        (res_ckpt.comm.max_time() - res_none.comm.max_time()) / n_ckpts, 0.0)

    total_steps = paper_use_case().last_step
    step_s = (COMPUTE_SECONDS_PER_STEP
              + res_none.comm.max_time() / cfg_none.last_step)

    result = ResilienceResult(
        machine=machine.name, nodes=nodes, ckpt_cost_s=ckpt_cost,
        step_seconds=step_s, total_steps=total_steps)
    result.notes.append(
        f"measured checkpoint cost {ckpt_cost:.2f} s, effective step time "
        f"{step_s * 1e3:.2f} ms (incl. {COMPUTE_SECONDS_PER_STEP * 1e3:.0f} "
        f"ms nominal compute), restart penalty "
        f"{RESTART_PENALTY_SECONDS:.0f} s")
    result.notes.append("I/O layer breakdown of the measurement run:")
    result.notes.extend(res_none.trace.render_breakdown().splitlines())

    for mtbf_h in mtbf_hours:
        # one seeded timeline per MTBF, shared across intervals, so the
        # interval comparison sees identical failure times
        for interval in intervals:
            rng = make_rng(seed, "resilience", mtbf_h, interval)
            result.rows.append(_replay(
                total_steps, step_s, int(interval), ckpt_cost,
                mtbf_h * 3600.0, rng))
        best = result.best_interval(mtbf_h)
        result.notes.append(
            f"MTBF {mtbf_h:g} h: best checkpoint interval {best} steps")
    return result


# -- multi-level sweep (tier policy × MTBF × interval) ------------------------
#
# The headline question of the resilience plane: where does multi-level
# checkpointing keep machine efficiency flat while single-level PFS
# checkpointing at its own Young/Daly-optimal interval collapses?
# Failure statistics follow the SCR measurements (Moody et al., SC'10):
# the large majority of failures take out a single node, which a
# partner/XOR tier recovers *in allocation* at NIC speed — no PFS read,
# no requeue.

#: fraction of failures confined to one node (recoverable from the
#: memory tiers when partner/XOR redundancy is on)
SINGLE_NODE_FRACTION = 0.9
#: seconds to swap in a spare node and resume inside the allocation
IN_ALLOCATION_RESTART_SECONDS = 10.0
#: extended MTBF sweep, hours — reaches the regime where PFS-only
#: checkpointing collapses
MULTILEVEL_MTBF_HOURS = (0.5, 2.0, 6.0, 24.0)


def young_daly_interval_s(ckpt_cost_s: float, mtbf_s: float) -> float:
    """The classic single-level optimum T = sqrt(2 * delta * MTBF)."""
    return math.sqrt(2.0 * max(ckpt_cost_s, 1e-9) * mtbf_s)


@dataclass
class TierCosts:
    """Per-checkpoint tier costs derived from the machine model."""

    l0_s: float          # node-local staging at memory bandwidth
    l1_s: float          # partner copy over the NIC
    l2_s: float          # XOR ring-reduce over the NIC (per member)
    l3_s: float          # measured PFS checkpoint cost
    pfs_read_s: float    # reading one checkpoint back from the PFS
    tier_restore_s: float  # rebuilding one node from partner/parity


@dataclass
class MultiLevelRow:
    """One (policy, MTBF, interval) cell."""

    policy: str
    mtbf_hours: float
    interval: int
    n_failures: int
    n_memory_recoveries: int
    n_pfs_recoveries: int
    ckpt_overhead_s: float
    lost_work_s: float
    time_to_solution_s: float
    efficiency: float


@dataclass
class MultiLevelResult:
    """Tiered policies vs the single-level Young/Daly baseline."""

    machine: str
    nodes: int
    costs: TierCosts
    total_steps: int
    step_seconds: float
    rows: list[MultiLevelRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def best_rows(self) -> list[MultiLevelRow]:
        """Per (policy, MTBF): the interval with the best efficiency."""
        best: dict[tuple[str, float], MultiLevelRow] = {}
        for r in self.rows:
            key = (r.policy, r.mtbf_hours)
            if key not in best or r.efficiency > best[key].efficiency:
                best[key] = r
        return [best[k] for k in sorted(best)]

    def efficiency_curves(self) -> dict[str, list[dict]]:
        """policy -> [{mtbf_hours, efficiency, interval}] (the artifact)."""
        curves: dict[str, list[dict]] = {}
        for r in self.best_rows():
            curves.setdefault(r.policy, []).append({
                "mtbf_hours": r.mtbf_hours,
                "efficiency": r.efficiency,
                "interval": r.interval,
            })
        for curve in curves.values():
            curve.sort(key=lambda p: p["mtbf_hours"])
        return curves

    def to_artifact(self) -> dict:
        return {
            "experiment": "resilience_multilevel",
            "machine": self.machine,
            "nodes": self.nodes,
            "total_steps": self.total_steps,
            "step_seconds": self.step_seconds,
            "tier_costs_s": {
                "l0": self.costs.l0_s, "l1": self.costs.l1_s,
                "l2": self.costs.l2_s, "l3": self.costs.l3_s,
                "pfs_read": self.costs.pfs_read_s,
                "tier_restore": self.costs.tier_restore_s,
            },
            "single_node_fraction": SINGLE_NODE_FRACTION,
            "efficiency_vs_mtbf": self.efficiency_curves(),
        }

    def save_artifact(self, path: str) -> str:
        d = os.path.dirname(path)
        if d:
            os.makedirs(d, exist_ok=True)
        with open(path, "w") as f:
            json.dump(self.to_artifact(), f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    def to_table(self) -> Table:
        t = Table(["policy", "MTBF [h]", "interval", "failures",
                   "mem rec", "PFS rec", "ovh [s]", "lost [s]",
                   "TTS [h]", "efficiency"],
                  title=f"Multi-level resilience sweep on {self.machine} "
                        f"({self.nodes} nodes, {self.total_steps} steps)")
        for r in self.best_rows():
            t.add_row([r.policy, f"{r.mtbf_hours:g}", r.interval,
                       r.n_failures, r.n_memory_recoveries,
                       r.n_pfs_recoveries, f"{r.ckpt_overhead_s:.0f}",
                       f"{r.lost_work_s:.0f}",
                       f"{r.time_to_solution_s / 3600.0:.3f}",
                       f"{r.efficiency:.4f}"])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def _replay_multilevel(total_steps: int, step_s: float, interval: int,
                       policy: str, costs: TierCosts, l3_every: int,
                       mtbf_s: float, rng) -> MultiLevelRow:
    """Walk one failure timeline under one tier policy.

    ``pfs-only``: every checkpoint is a synchronous L3 write; every
    failure rolls back to the last checkpoint and pays a PFS read plus
    the full requeue penalty — the Young/Daly world.

    ``partner``/``xor``: every checkpoint is staged to L0 and promoted
    to the memory tier; every ``l3_every``-th is also flushed to the PFS
    asynchronously (overhead only when the flush outruns its window).  A
    single-node failure recovers from the memory tier in allocation;
    a multi-node failure falls back to the last *flushed* generation
    and pays the PFS read plus requeue.
    """
    tiered = policy != "pfs-only"
    if tiered:
        tier_s = costs.l1_s if policy == "partner" else costs.l2_s
        window = l3_every * interval * step_s
        per_ckpt = costs.l0_s + tier_s + max(0.0, costs.l3_s - window) \
            / l3_every
    else:
        per_ckpt = costs.l3_s
    wall = 0.0
    completed = 0
    last_l3 = 0            # newest generation on the PFS (steps)
    ckpts_since_l3 = 0
    n_failures = n_mem = n_pfs = 0
    ckpt_overhead = 0.0
    lost_work = 0.0
    next_fail = wall + float(rng.exponential(mtbf_s))
    while completed < total_steps:
        block = min(interval, total_steps - completed)
        block_time = block * step_s + per_ckpt
        if wall + block_time >= next_fail:
            n_failures += 1
            lost_since_ckpt = max(next_fail - wall, 0.0)
            single = tiered and float(rng.random()) < SINGLE_NODE_FRACTION
            if single:
                # memory-tier rebuild: roll back only to the last
                # checkpoint, resume inside the allocation
                n_mem += 1
                lost_work += lost_since_ckpt
                wall = next_fail + costs.tier_restore_s \
                    + IN_ALLOCATION_RESTART_SECONDS
            else:
                # beyond redundancy (or single-level): back to the last
                # PFS generation, full requeue
                n_pfs += 1
                rollback = (completed - last_l3) * step_s + lost_since_ckpt
                lost_work += rollback
                completed = last_l3
                ckpts_since_l3 = 0
                wall = next_fail + costs.pfs_read_s \
                    + RESTART_PENALTY_SECONDS
            next_fail = wall + float(rng.exponential(mtbf_s))
            continue
        wall += block_time
        completed += block
        ckpt_overhead += per_ckpt
        ckpts_since_l3 += 1
        if not tiered or ckpts_since_l3 >= l3_every:
            last_l3 = completed
            ckpts_since_l3 = 0
    ideal = total_steps * step_s
    return MultiLevelRow(
        policy=policy, mtbf_hours=mtbf_s / 3600.0, interval=interval,
        n_failures=n_failures, n_memory_recoveries=n_mem,
        n_pfs_recoveries=n_pfs, ckpt_overhead_s=ckpt_overhead,
        lost_work_s=lost_work, time_to_solution_s=wall,
        efficiency=ideal / wall)


def run_resilience_multilevel(machine=None, nodes: int = 2,
                              quick: bool = False, seed: int = 0,
                              mtbf_hours=MULTILEVEL_MTBF_HOURS,
                              intervals=CKPT_INTERVALS,
                              ranks_per_node: int = 128,
                              l3_every: int = 4,
                              artifact_path: str | None = None,
                              ) -> MultiLevelResult:
    """Sweep tier policy × MTBF × interval against the Young/Daly optimum.

    The L3 (PFS) checkpoint cost is *measured* on the virtual machine
    exactly as :func:`run_resilience` measures it; the memory-tier costs
    follow from the machine model (node memory bandwidth, NIC rate) and
    the data model's checkpoint volume.  The single-level baseline runs
    at its own Young/Daly-optimal interval per MTBF — the strongest
    version of the world the tiered policies are compared against.
    """
    machine = resolve_machine(machine) if machine is not None else dardel()
    mtbf_hours = subset(tuple(mtbf_hours), quick)
    intervals = subset(tuple(intervals), quick)

    base = run_resilience(machine=machine, nodes=nodes, quick=quick,
                          seed=seed, mtbf_hours=mtbf_hours[:1],
                          intervals=intervals[:1])
    nranks = nodes * ranks_per_node
    model = Bit1DataModel(paper_use_case(), nranks)
    node_bytes = float(np.mean(model.ckpt_bytes_per_rank())) * ranks_per_node
    nic = machine.network.nic_bandwidth
    lat = machine.network.latency
    costs = TierCosts(
        l0_s=node_bytes / machine.node.memory_bandwidth,
        l1_s=lat + node_bytes / nic,
        l2_s=lat + node_bytes / nic,
        l3_s=max(base.ckpt_cost_s, 1e-3),
        pfs_read_s=max(base.ckpt_cost_s, 1e-3),
        tier_restore_s=lat + node_bytes / nic,
    )

    result = MultiLevelResult(
        machine=machine.name, nodes=nodes, costs=costs,
        total_steps=base.total_steps, step_seconds=base.step_seconds)
    result.notes.append(
        f"tier costs per checkpoint: L0 {costs.l0_s * 1e3:.2f} ms, "
        f"L1/L2 {costs.l1_s * 1e3:.2f} ms, L3 {costs.l3_s:.2f} s "
        f"(measured); {SINGLE_NODE_FRACTION:.0%} of failures single-node")

    step_s = base.step_seconds
    for mtbf_h in mtbf_hours:
        mtbf_s = mtbf_h * 3600.0
        # the baseline checkpoints at its own optimum — Young/Daly
        daly_steps = max(1, int(round(
            young_daly_interval_s(costs.l3_s, mtbf_s) / step_s)))
        rng = make_rng(seed, "resilience-ml", "pfs-only", mtbf_h)
        result.rows.append(_replay_multilevel(
            base.total_steps, step_s, daly_steps, "pfs-only", costs,
            l3_every, mtbf_s, rng))
        for policy in ("partner", "xor"):
            for interval in intervals:
                rng = make_rng(seed, "resilience-ml", policy, mtbf_h,
                               interval)
                result.rows.append(_replay_multilevel(
                    base.total_steps, step_s, int(interval), policy,
                    costs, l3_every, mtbf_s, rng))
        daly_row = next(r for r in result.rows
                        if r.policy == "pfs-only"
                        and r.mtbf_hours == mtbf_h)
        result.notes.append(
            f"MTBF {mtbf_h:g} h: Young/Daly interval {daly_steps} steps, "
            f"baseline efficiency {daly_row.efficiency:.4f}")

    if artifact_path is not None:
        result.save_artifact(artifact_path)
        result.notes.append(f"artifact written to {artifact_path}")
    return result


def main() -> None:  # pragma: no cover
    print(run_resilience().render())
    print(run_resilience_multilevel(
        artifact_path="results/resilience_multilevel.json").render())


if __name__ == "__main__":  # pragma: no cover
    main()
