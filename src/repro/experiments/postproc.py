"""Parallel post-processing / restart-read benchmark (future work, §VI).

"Future research can enhance BIT1's capabilities by … investigating
parallel post processing performance benchmarks [and] continuing with
checkpoint restarts."  This driver measures the *read* side that the
paper leaves open: a restart job re-reading the checkpoint series that a
prior run wrote, as a function of the aggregation level used when
writing.

The mechanism mirrors the write side: a single-subfile checkpoint must
be fanned out from one stream, while an aggregated layout lets every
reader pull its share from its node's subfile in parallel — so write-side
aggregation tuning pays off again at restart time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.presets import dardel
from repro.darshan.runtime import DarshanMonitor
from repro.experiments.common import resolve_machine
from repro.fs.mount import mount
from repro.fs.posix import PosixIO
from repro.mpi.comm import comm_for_nodes
from repro.util.rng import RngRegistry, stream_seed
from repro.util.tables import Table
from repro.util.units import to_gib
from repro.workloads.datamodel import Bit1DataModel
from repro.workloads.presets import paper_use_case


@dataclass
class PostprocResult:
    """Restart-read throughput per writer-side aggregation level."""

    machine: str
    nodes: int
    aggregators: tuple[int, ...]
    read_gib_s: tuple[float, ...]

    def to_table(self) -> Table:
        t = Table(["writer aggregators", "restart read GiB/s"],
                  title=f"Restart-read throughput on {self.machine} "
                        f"({self.nodes} nodes)")
        for m, g in zip(self.aggregators, self.read_gib_s):
            t.add_row([m, f"{g:.2f}"])
        return t

    def render(self) -> str:
        return self.to_table().render()


def _read_rate(perf, n_subfiles: int, readers: int) -> float:
    """Aggregate read bytes/s: same stream/OST mechanics as writes.

    Reads are cheaper per RPC (no commit), modelled as the write-side
    aggregate rate with read-RPC latency — the stream parallelism is
    bounded by the number of subfiles the checkpoint was written into.
    """
    streams = min(n_subfiles, readers)
    return float(perf.aggregate_write_rate(streams, 1))


def run_postproc(nodes: int = 200,
                 aggregators: tuple[int, ...] = (1, 10, 100, 400, 25600),
                 machine=None, ranks_per_node: int = 128,
                 seed: int = 0) -> PostprocResult:
    """Measure restart-read throughput for several checkpoint layouts."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    config = paper_use_case()
    results = []
    for m in aggregators:
        rng = RngRegistry(stream_seed(seed, machine.name, nodes, "postproc", m))
        fs = mount(machine.default_storage, rng)
        comm = comm_for_nodes(nodes, ranks_per_node,
                              latency=machine.network.latency,
                              bandwidth=machine.network.nic_bandwidth)
        monitor = DarshanMonitor(comm.size, exe="bit1-restart")
        posix = PosixIO(fs, comm, monitor)
        model = Bit1DataModel(config, comm.size)
        posix.mkdir(0, "/scratch", parents=True)

        # lay the checkpoint down with M subfiles (content sizes only)
        n_sub = min(m, comm.size)
        posix.mkdir(0, "/scratch/dmp_file.bp4")
        sub_ranks = np.linspace(0, comm.size - 1, n_sub).astype(np.int64)
        fds = posix.open_group(sub_ranks,
                               [f"/scratch/dmp_file.bp4/data.{i}"
                                for i in range(n_sub)])
        per_sub = model.state_bytes // n_sub
        posix.fs.vfs.write_group(posix._inos_of(np.asarray(fds)), per_sub)

        # the restart: every rank reads its share; parallelism bounded by
        # the subfile count
        rate = _read_rate(fs.perf, n_sub, comm.size)
        share = model.ckpt_bytes_per_rank()
        costs = share / (rate / comm.size) * fs.perf.noise(comm.size)
        posix._charge(np.arange(comm.size), costs)
        posix._notify("read", np.arange(comm.size), share, costs, "POSIX")
        posix.close_group(sub_ranks, fds)

        log = monitor.finalize(machine=machine.name,
                               config=f"restart-read {m} subfiles")
        total = log.total_bytes_read()
        slowest = float(log.per_rank_time("F_READ_TIME").max())
        results.append(to_gib(total / slowest) if slowest else 0.0)
    return PostprocResult(machine=machine.name, nodes=nodes,
                          aggregators=tuple(aggregators),
                          read_gib_s=tuple(results))


def main() -> None:  # pragma: no cover
    print(run_postproc().render())


if __name__ == "__main__":  # pragma: no cover
    main()
