"""The autotuner experiment: tuner-found vs paper-reported configs.

Runs :func:`repro.tuning.tune` per machine model (Dardel, Discoverer,
Vega — the three systems of §III-C) on the paper's workload and emits
``results/tuned_configs.json``: one entry per machine × workload with
the winning configuration, its predicted throughput/makespan, the
search trace, and the probes-evaluated vs probes-cached split.  The
paper-reported configuration (BP4, two aggregators per node per Fig. 6,
``lfs setstripe -c 8 -S 16M`` per Table III / Listing 1) is seeded into
every search as a protected baseline, so the tuner matches or beats its
modeled objective by construction — the interesting output is *how
much* and *where* the optimum moves per machine.

If an artifact from an earlier run exists, the driver first runs the
regression mode: it re-reads the artifact's pinned source fingerprint,
refreshes the in-process fingerprint memo
(:func:`~repro.experiments.sweep.invalidate_fingerprint`), re-probes
every previously recommended configuration under the current model and
flags any whose objective regressed.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field

from repro.cluster.presets import dardel, discoverer, vega
from repro.experiments.paper_data import (
    FIG6_PEAK_AGGREGATORS,
    LISTING1_STRIPE_COUNT,
    LISTING1_STRIPE_SIZE,
)
from repro.experiments.sweep import source_fingerprint, sweep_batch
from repro.pic.config import Bit1Config, SpeciesConfig
from repro.tuning import (
    OBJECTIVES,
    Candidate,
    Recommendation,
    RegressionReport,
    TuningResult,
    TuningSpace,
    revalidate,
    tune,
)
from repro.util.tables import Table
from repro.workloads.presets import paper_use_case

ARTIFACT_SCHEMA = 1

#: the configuration the paper lands on by hand: BP4, two aggregators
#: per node (400 subfiles at 200 nodes, Fig. 6), Table III striping
PAPER_CANDIDATE = Candidate(
    engine_ext=".bp4",
    aggs_per_node=FIG6_PEAK_AGGREGATORS / 200,
    stripe_count=LISTING1_STRIPE_COUNT,
    stripe_size=LISTING1_STRIPE_SIZE,
    compressor=None,
    async_drain=False,
)


def _config_to_json(config: Bit1Config) -> dict:
    return dataclasses.asdict(config)


def _config_from_json(data: dict) -> Bit1Config:
    data = dict(data)
    data["species"] = tuple(SpeciesConfig(**s)
                            for s in data.get("species", ()))
    data["magnetic_field"] = tuple(data.get("magnetic_field",
                                            (0.0, 0.0, 0.0)))
    return Bit1Config(**data)


@dataclass
class MachineTuningEntry:
    """Tuner result + paper baseline on one machine."""

    workload: str
    result: TuningResult
    paper_candidate: Candidate
    paper_report: dict
    paper_objective: float

    @property
    def improvement_fraction(self) -> float:
        if self.paper_objective == 0:
            return 0.0
        return (self.result.best_objective - self.paper_objective) \
            / abs(self.paper_objective)


@dataclass
class TuningExperimentResult:
    """Everything one ``tune`` invocation found, plus the artifact."""

    objective: str
    entries: list[MachineTuningEntry] = field(default_factory=list)
    regression: RegressionReport | None = None
    artifact_path: str | None = None

    def to_table(self) -> Table:
        unit = OBJECTIVES[self.objective][1]
        t = Table(["machine", "nodes", "tuner-found config",
                   f"tuned [{unit}]", f"paper [{unit}]", "delta",
                   "probes (eval/cached)"],
                  title="Autotuned I/O configurations "
                        f"(objective: {self.objective})")
        for e in self.entries:
            r = e.result
            t.add_row([r.machine, r.nodes, r.best.label(),
                       f"{abs(r.best_objective):.2f}",
                       f"{abs(e.paper_objective):.2f}",
                       f"{e.improvement_fraction:+.1%}",
                       f"{r.probes_evaluated}/{r.probes_cached}"])
        return t

    def render(self) -> str:
        out = []
        if self.regression is not None:
            out.append("regression check: " + self.regression.render())
        if not self.entries:
            if self.regression is None:
                out.append("no tuned-config artifact found; "
                           "run the `tune` experiment first")
            return "\n".join(out)
        out.append(self.to_table().render())
        for e in self.entries:
            out.append(f"  note: {e.result.machine}: paper config "
                       f"{e.paper_candidate.label()}; search probed "
                       f"{e.result.probes_total} points "
                       f"({e.result.cached_fraction:.0%} from cache)")
        if self.artifact_path:
            out.append(f"  artifact: {self.artifact_path}")
        return "\n".join(out)

    def artifact(self, config: Bit1Config) -> dict:
        entries = []
        for e in self.entries:
            r = e.result
            entries.append({
                "machine": r.machine,
                "workload": e.workload,
                "nodes": r.nodes,
                "config": _config_to_json(config),
                "best": r.best.to_dict(),
                "predicted": {
                    "objective": r.best_objective,
                    "gib": r.best_report.get("gib"),
                    "makespan_s": r.best_report.get("makespan"),
                },
                "paper": {
                    "candidate": e.paper_candidate.to_dict(),
                    "objective": e.paper_objective,
                    "gib": e.paper_report.get("gib"),
                    "makespan_s": e.paper_report.get("makespan"),
                },
                "probes": {"evaluated": r.probes_evaluated,
                           "cached": r.probes_cached},
                "trace": [{"stage": p.stage, "config": p.candidate.label(),
                           "fidelity": p.fidelity,
                           "objective": p.objective, "cached": p.cached}
                          for p in r.trace],
            })
        return {"schema": ARTIFACT_SCHEMA,
                "objective": self.objective,
                "source_fingerprint": source_fingerprint(),
                "entries": entries}


def check_artifact(artifact: dict, objective: str | None = None,
                   tolerance: float = 0.02, point_fn=None,
                   jobs: int | None = None, cache_dir: str | None = None
                   ) -> RegressionReport:
    """Regression mode over a loaded ``tuned_configs.json`` artifact."""
    from repro.cluster.presets import machine_by_name

    objective = objective or artifact.get("objective", "throughput")
    recs = []
    for entry in artifact.get("entries", ()):
        recs.append(Recommendation(
            machine=machine_by_name(entry["machine"]),
            nodes=entry["nodes"],
            config=_config_from_json(entry["config"]),
            candidate=Candidate.from_dict(entry["best"]),
            expected_objective=entry["predicted"]["objective"],
            label=f"{entry['machine']}/{entry['workload']}"
                  f"@{entry['nodes']}nodes"))
    return revalidate(recs, artifact["source_fingerprint"],
                      objective=objective, tolerance=tolerance,
                      point_fn=point_fn, jobs=jobs, cache_dir=cache_dir)


def run_tuning(quick: bool = False, machines=None, nodes: int | None = None,
               objective: str = "throughput", space: TuningSpace | None = None,
               config: Bit1Config | None = None, seed: int = 0,
               artifact_path: str | None = "results/tuned_configs.json",
               regression_only: bool = False, point_fn=None,
               jobs: int | None = None, cache_dir: str | None = None
               ) -> TuningExperimentResult:
    """Tune every machine model and (re)write the recommendation artifact.

    ``regression_only=True`` stops after the artifact re-validation —
    the service-mode health check ("are yesterday's recommendations
    still valid under today's model?").
    """
    if machines is None:
        machines = (dardel(), discoverer(), vega())
    if nodes is None:
        nodes = 4 if quick else 200
    if space is None:
        space = TuningSpace.quick() if quick else TuningSpace()
    if config is None:
        config = (paper_use_case().with_(last_step=4_000, dmpstep=2_000)
                  if quick else paper_use_case())
    workload = "paper-quick" if quick else "paper"
    result = TuningExperimentResult(objective=objective,
                                    artifact_path=artifact_path)

    if artifact_path and os.path.exists(artifact_path):
        try:
            with open(artifact_path) as f:
                artifact = json.load(f)
        except (OSError, json.JSONDecodeError):
            artifact = None
        if artifact and artifact.get("schema") == ARTIFACT_SCHEMA:
            result.regression = check_artifact(
                artifact, point_fn=point_fn, jobs=jobs,
                cache_dir=cache_dir)
    if regression_only:
        return result

    score = OBJECTIVES[objective][0]
    for machine in machines:
        machine_space = space.for_machine(machine)
        paper = machine_space.clip(PAPER_CANDIDATE)
        tuned = tune(machine, nodes, space=machine_space, config=config,
                     objective=objective, baselines=(paper,), seed=seed,
                     point_fn=point_fn, jobs=jobs, cache_dir=cache_dir)
        batch = sweep_batch(
            point_fn or _default_point_fn(),
            [paper.params(machine, nodes, config, 0.0, seed)],
            jobs=jobs, cache_dir=cache_dir)
        paper_report = batch.results[0]
        result.entries.append(MachineTuningEntry(
            workload=workload, result=tuned, paper_candidate=paper,
            paper_report=paper_report,
            paper_objective=float(score(paper_report))))

    if artifact_path:
        os.makedirs(os.path.dirname(artifact_path) or ".", exist_ok=True)
        with open(artifact_path, "w") as f:
            json.dump(result.artifact(config), f, indent=2, sort_keys=True)
            f.write("\n")
    return result


def _default_point_fn():
    from repro.experiments.points import tuning_report
    return tuning_report


def main() -> None:  # pragma: no cover
    print(run_tuning().render())


if __name__ == "__main__":  # pragma: no cover
    main()
