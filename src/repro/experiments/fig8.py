"""Fig. 8 — profiling.json memory-copy times, with vs without compression.

"Fig 8 displays profiling.json results on 200 nodes, where memory copy
operation execution times are entirely eliminated for the BIT1 openPMD +
BP4 configuration with Blosc compression and 1 AGGR" — because the
compressor emits straight into the staging buffer, skipping the staging
memcpy an uncompressed put performs.

The figure's numbers are derived from the :mod:`repro.trace` event
stream alone: each run carries a ``trace_mode="summary"`` session whose
``stream_profile`` folds every engine event (memcpy, compress, shuffle,
collective_write) across both series, and whose streaming
:class:`~repro.trace.export.LayerBreakdown` gives the per-layer time
split reported alongside the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.presets import dardel
from repro.experiments.common import resolve_machine
from repro.experiments.points import openpmd_profile
from repro.experiments.sweep import sweep
from repro.util.tables import Table


@dataclass
class Fig8Result:
    """Per-rank memcpy/compress microseconds for both configurations."""

    machine: str
    nodes: int
    memcpy_us_uncompressed: float
    memcpy_us_compressed: float
    compress_us_uncompressed: float
    compress_us_compressed: float
    #: per-layer time breakdowns rendered from each run's event stream
    breakdowns: dict = field(default_factory=dict)

    @property
    def memcpy_eliminated(self) -> bool:
        return (self.memcpy_us_compressed == 0.0
                and self.memcpy_us_uncompressed > 0.0)

    def to_table(self) -> Table:
        t = Table(["configuration", "mean memcpy (µs/rank)",
                   "mean compress (µs/rank)"],
                  title=f"Fig 8: profiling.json memory-copy times on "
                        f"{self.machine} ({self.nodes} nodes)")
        t.add_row(["openPMD+BP4 + 1 AGGR (no compression)",
                   f"{self.memcpy_us_uncompressed:.1f}",
                   f"{self.compress_us_uncompressed:.1f}"])
        t.add_row(["openPMD+BP4 + Blosc + 1 AGGR",
                   f"{self.memcpy_us_compressed:.1f}",
                   f"{self.compress_us_compressed:.1f}"])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        out += ("\n  memory copies eliminated by compression: "
                f"{self.memcpy_eliminated} (paper: True)")
        for label, text in self.breakdowns.items():
            out += f"\n\n[{label}]\n{text}"
        return out


def run_fig8(nodes: int = 200, machine=None, seed: int = 0) -> Fig8Result:
    """Reproduce Fig. 8 from the runs' trace event streams.

    The per-rank microseconds come from each run's whole-run
    ``stream_profile``, which sums the category across every engine in
    the run (diagnostics + checkpoint series) — the folding happens in
    :func:`repro.experiments.points.openpmd_profile`.
    """
    machine = resolve_machine(machine) if machine is not None else dardel()
    plain, blosc = sweep(openpmd_profile,
                         [{"machine": machine, "nodes": nodes,
                           "compressor": c, "seed": seed}
                          for c in (None, "blosc")])
    breakdowns = {
        "openPMD+BP4 + 1 AGGR (no compression)": plain["breakdown"],
        "openPMD+BP4 + Blosc + 1 AGGR": blosc["breakdown"],
    }
    return Fig8Result(
        machine=machine.name,
        nodes=nodes,
        memcpy_us_uncompressed=plain["memcpy_us"],
        memcpy_us_compressed=blosc["memcpy_us"],
        compress_us_uncompressed=plain["compress_us"],
        compress_us_compressed=blosc["compress_us"],
        breakdowns=breakdowns,
    )


def main() -> None:  # pragma: no cover
    print(run_fig8().render())


if __name__ == "__main__":  # pragma: no cover
    main()
