"""Fig. 8 — profiling.json memory-copy times, with vs without compression.

"Fig 8 displays profiling.json results on 200 nodes, where memory copy
operation execution times are entirely eliminated for the BIT1 openPMD +
BP4 configuration with Blosc compression and 1 AGGR" — because the
compressor emits straight into the staging buffer, skipping the staging
memcpy an uncompressed put performs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.presets import dardel
from repro.experiments.common import resolve_machine
from repro.util.tables import Table
from repro.workloads.runner import run_openpmd_scaled


@dataclass
class Fig8Result:
    """Per-rank memcpy/compress microseconds for both configurations."""

    machine: str
    nodes: int
    memcpy_us_uncompressed: float
    memcpy_us_compressed: float
    compress_us_uncompressed: float
    compress_us_compressed: float

    @property
    def memcpy_eliminated(self) -> bool:
        return (self.memcpy_us_compressed == 0.0
                and self.memcpy_us_uncompressed > 0.0)

    def to_table(self) -> Table:
        t = Table(["configuration", "mean memcpy (µs/rank)",
                   "mean compress (µs/rank)"],
                  title=f"Fig 8: profiling.json memory-copy times on "
                        f"{self.machine} ({self.nodes} nodes)")
        t.add_row(["openPMD+BP4 + 1 AGGR (no compression)",
                   f"{self.memcpy_us_uncompressed:.1f}",
                   f"{self.compress_us_uncompressed:.1f}"])
        t.add_row(["openPMD+BP4 + Blosc + 1 AGGR",
                   f"{self.memcpy_us_compressed:.1f}",
                   f"{self.compress_us_compressed:.1f}"])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        out += ("\n  memory copies eliminated by compression: "
                f"{self.memcpy_eliminated} (paper: True)")
        return out


def _mean_us(profiles, category: str) -> float:
    total = sum(p.total_us(category) for p in profiles)
    ranks = max(p.nranks for p in profiles) if profiles else 1
    return total / ranks


def run_fig8(nodes: int = 200, machine=None, seed: int = 0) -> Fig8Result:
    """Reproduce Fig. 8 from the engines' profiling counters."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    plain = run_openpmd_scaled(machine, nodes, num_aggregators=1,
                               profiling=True, seed=seed)
    blosc = run_openpmd_scaled(machine, nodes, num_aggregators=1,
                               compressor="blosc", profiling=True, seed=seed)
    return Fig8Result(
        machine=machine.name,
        nodes=nodes,
        memcpy_us_uncompressed=_mean_us(plain.profiles, "memcpy"),
        memcpy_us_compressed=_mean_us(blosc.profiles, "memcpy"),
        compress_us_uncompressed=_mean_us(plain.profiles, "compress"),
        compress_us_compressed=_mean_us(blosc.profiles, "compress"),
    )


def main() -> None:  # pragma: no cover
    print(run_fig8().render())


if __name__ == "__main__":  # pragma: no cover
    main()
