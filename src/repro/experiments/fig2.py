"""Fig. 2 — BIT1 original file I/O write throughput on three machines.

"Fig. 2 displays the performance of traditional file I/O in BIT1 on
Discoverer, Dardel, and Vega CPU LFS" up to 200 nodes, in GiB/s.
Expected shapes: Discoverer declines ~23% from 0.26 to 0.20 GiB/s;
Dardel improves from 0.09 to ~0.41 GiB/s; Vega shows no clear scaling.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.presets import all_machines
from repro.experiments.common import ExperimentResult, SeriesResult
from repro.experiments.paper_data import FIG2_ANCHORS, NODE_COUNTS
from repro.experiments.points import original_report
from repro.experiments.sweep import sweep


def run_fig2(node_counts: Sequence[int] = NODE_COUNTS,
             machines=None, seed: int = 0) -> ExperimentResult:
    """Reproduce Fig. 2; returns one series per machine."""
    machines = list(machines) if machines is not None else all_machines()
    node_counts = list(node_counts)
    result = ExperimentResult(
        name="Fig 2: BIT1 Original File I/O Write Throughput (GiB/s)",
        x_name="nodes",
    )
    reports = iter(sweep(original_report,
                         [{"machine": m, "nodes": n, "seed": seed}
                          for m in machines for n in node_counts]))
    for machine in machines:
        series = SeriesResult(label=machine.name)
        for nodes in node_counts:
            series.add(nodes, next(reports)["gib"])
        result.series.append(series)
        anchors = FIG2_ANCHORS.get(machine.name)
        if anchors:
            result.notes.append(
                f"paper anchors {machine.name}: "
                + ", ".join(f"{n} nodes = {v} GiB/s"
                            for n, v in anchors.items())
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig2().render())


if __name__ == "__main__":  # pragma: no cover
    main()
