"""Post-hoc vs in-situ streaming — the §VI SST direction, quantified.

The paper's future work names the ADIOS2 SST engine for "in-situ
processing, analysis, and visualization".  This driver asks the question
that decides whether staging is worth deploying: against the same job
(same cadence, same Table-II byte volumes, same analysis), what does the
streaming path buy and what does it cost?

Per (node count, queue depth) the sweep compares:

* **time-to-first-insight** — in-situ: the first analysed step, minutes
  into the run; post-hoc: only after the whole job finishes and the
  first snapshot is read back;
* **makespan** — producer + consumer drain (in-situ) vs job + read-back
  + analysis (post-hoc);
* **peak staging memory** — the price of the staging buffer, bounded by
  the queue depth;
* **backpressure** — producer stalls (block policy) or dropped steps
  (discard policy) when consumers cannot keep up;
* **storage bytes avoided** — everything that never hits the filesystem
  (the checkpoint tee is the only storage the streaming path pays).

Both sides charge the same nominal compute per step; points route
through the cached sweep executor like every other figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.presets import dardel
from repro.experiments.common import resolve_machine, subset
from repro.experiments.points import posthoc_report, streaming_report
from repro.experiments.sweep import sweep
from repro.util.tables import Table
from repro.util.units import to_gib
from repro.workloads.presets import paper_use_case

#: staging queue-depth sweep (steps buffered before backpressure)
QUEUE_DEPTHS = (1, 2, 4)
#: node-count sweep (the paper's small/mid/large scales)
NODE_COUNTS = (2, 10, 50)
#: nominal compute seconds per simulation step (stands in for the PIC
#: cycle, which the scaled runs do not execute)
COMPUTE_SECONDS_PER_STEP = 0.005


@dataclass
class StreamingRow:
    """One (nodes, queue depth) cell of the comparison."""

    nodes: int
    queue_depth: int
    ttfi_insitu_s: float
    ttfi_posthoc_s: float
    makespan_insitu_s: float
    makespan_posthoc_s: float
    peak_staging_gib: float
    stalls: int
    stall_seconds: float
    dropped: int
    storage_avoided_gib: float

    @property
    def insitu_wins_ttfi(self) -> bool:
        """First insight before the file-based job even finishes?"""
        return self.ttfi_insitu_s < self.makespan_posthoc_s


@dataclass
class StreamingResult:
    """The post-hoc vs in-situ sweep on one machine."""

    machine: str
    policy: str
    total_steps: int
    rows: list[StreamingRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def insitu_wins(self) -> list[int]:
        """Node counts where in-situ first insight beats the file-based
        makespan at every swept queue depth."""
        nodes = sorted({r.nodes for r in self.rows})
        return [n for n in nodes
                if all(r.insitu_wins_ttfi for r in self.rows
                       if r.nodes == n)]

    def to_table(self) -> Table:
        t = Table(["nodes", "depth", "TTFI in-situ [s]", "TTFI file [s]",
                   "makespan in-situ [s]", "makespan file [s]",
                   "peak staging [GiB]", "stalls", "stall [s]", "dropped",
                   "storage avoided [GiB]"],
                  title=f"Post-hoc vs in-situ streaming on {self.machine} "
                        f"({self.policy} policy, {self.total_steps} steps)")
        for r in self.rows:
            t.add_row([r.nodes, r.queue_depth,
                       f"{r.ttfi_insitu_s:.1f}", f"{r.ttfi_posthoc_s:.1f}",
                       f"{r.makespan_insitu_s:.1f}",
                       f"{r.makespan_posthoc_s:.1f}",
                       f"{r.peak_staging_gib:.3f}", r.stalls,
                       f"{r.stall_seconds:.2f}", r.dropped,
                       f"{r.storage_avoided_gib:.2f}"])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def run_streaming(machine=None, node_counts=NODE_COUNTS,
                  queue_depths=QUEUE_DEPTHS, policy: str = "block",
                  quick: bool = False, seed: int = 0,
                  compute_seconds_per_step: float = COMPUTE_SECONDS_PER_STEP,
                  config=None) -> StreamingResult:
    """Sweep node counts × queue depths, in-situ vs post-hoc."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    node_counts = subset(tuple(node_counts), quick)
    queue_depths = subset(tuple(queue_depths), quick)
    if config is None:
        # shortened runs that keep both cadences: diagnostics every 1K
        # steps, checkpoints at the paper's dmpstep (or a scaled-down
        # one in quick mode) so the sweep exercises the big staged steps
        config = (paper_use_case().with_(last_step=4_000, dmpstep=2_000)
                  if quick else paper_use_case().with_(last_step=20_000))

    post = sweep(posthoc_report,
                 [{"machine": machine, "nodes": n, "config": config,
                   "compute_seconds_per_step": compute_seconds_per_step,
                   "seed": seed} for n in node_counts])
    stream_points = [{"machine": machine, "nodes": n, "config": config,
                      "queue_depth": q, "policy": policy,
                      "compute_seconds_per_step": compute_seconds_per_step,
                      "seed": seed}
                     for n in node_counts for q in queue_depths]
    streams = sweep(streaming_report, stream_points)

    result = StreamingResult(machine=machine.name, policy=policy,
                             total_steps=config.last_step)
    by_nodes = dict(zip(node_counts, post))
    for point, rep in zip(stream_points, streams):
        base = by_nodes[point["nodes"]]
        result.rows.append(StreamingRow(
            nodes=point["nodes"], queue_depth=point["queue_depth"],
            ttfi_insitu_s=rep["ttfi"] if rep["ttfi"] is not None
            else float("inf"),
            ttfi_posthoc_s=base["ttfi"],
            makespan_insitu_s=rep["makespan"],
            makespan_posthoc_s=base["makespan"],
            peak_staging_gib=to_gib(rep["peak_staging_bytes"]),
            stalls=rep["stalls"], stall_seconds=rep["stall_seconds"],
            dropped=rep["dropped"],
            storage_avoided_gib=to_gib(rep["storage_bytes_avoided"])))

    wins = result.insitu_wins()
    result.notes.append(
        f"in-situ first insight beats the file-based makespan at "
        f"{len(wins)}/{len(node_counts)} scales: {wins}")
    blocked = [r for r in result.rows if r.stalls or r.dropped]
    if blocked:
        worst = max(blocked, key=lambda r: (r.stall_seconds, r.dropped))
        result.notes.append(
            f"backpressure: depth {worst.queue_depth} at {worst.nodes} "
            f"nodes saw {worst.stalls} stall(s) ({worst.stall_seconds:.2f} "
            f"s) / {worst.dropped} drop(s)")
    return result


def main() -> None:  # pragma: no cover
    print(run_streaming().render())


if __name__ == "__main__":  # pragma: no cover
    main()
