"""Run every experiment driver and print the paper's tables/figures.

Usage::

    python -m repro.experiments            # full sweeps (a few minutes)
    python -m repro.experiments --quick    # reduced sweeps (seconds)
    python -m repro.experiments fig6 fig9  # a subset
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    run_agg_sweep,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_gpu,
    run_postproc,
    run_resilience,
    run_resilience_multilevel,
    run_sensitivity,
    run_serving,
    run_streaming,
    run_table2,
    run_tuning,
    run_weak_scaling,
)
from repro.experiments.common import subset
from repro.experiments.paper_data import FIG6_SWEEP, NODE_COUNTS

ALL = ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
       "table2", "postproc", "weak_scaling", "sensitivity", "resilience",
       "resilience_ml", "streaming", "serving", "gpu", "agg", "tune")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments",
                                     description=__doc__)
    parser.add_argument("experiments", nargs="*", default=list(ALL),
                        help=f"which to run (default: all of {ALL})")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweeps for a fast look")
    args = parser.parse_args(argv)

    nodes = subset(NODE_COUNTS, args.quick)
    aggrs = subset(FIG6_SWEEP, args.quick)
    table = {
        "fig2": lambda: run_fig2(node_counts=nodes).render(),
        "fig3": lambda: run_fig3(node_counts=nodes).render(),
        "fig4": lambda: run_fig4(node_counts=nodes).render(),
        "fig5": lambda: run_fig5().render(),
        "fig6": lambda: run_fig6(aggregators=aggrs).render(
            y_format=lambda v: f"{v:.2f}"),
        "fig7": lambda: run_fig7(node_counts=nodes).render(),
        "fig8": lambda: run_fig8().render(),
        "fig9": lambda: run_fig9().render(),
        "table2": lambda: run_table2(node_counts=nodes).render(),
        "postproc": lambda: run_postproc().render(),
        "weak_scaling": lambda: run_weak_scaling(
            node_counts=subset((1, 5, 20, 50, 200), args.quick)).render(
            y_format=lambda v: f"{v:.4f}"),
        "sensitivity": lambda: run_sensitivity(
            nodes=50 if args.quick else 200).render(),
        "resilience": lambda: run_resilience(quick=args.quick).render(),
        "resilience_ml": lambda: run_resilience_multilevel(
            quick=args.quick,
            artifact_path="results/resilience_multilevel.json").render(),
        "streaming": lambda: run_streaming(quick=args.quick).render(),
        "serving": lambda: run_serving(
            quick=args.quick,
            artifact_path="results/serving.json").render(),
        "gpu": lambda: run_gpu(
            quick=args.quick,
            artifact_path="results/gpu_staging.json").render(),
        "agg": lambda: run_agg_sweep(quick=args.quick).render(),
        "tune": lambda: run_tuning(
            quick=args.quick,
            artifact_path="results/tuned_configs.json").render(),
        # service-mode health check: re-validate the existing artifact's
        # recommendations against the current model source, no retuning
        "tune_check": lambda: run_tuning(
            quick=args.quick, regression_only=True,
            artifact_path="results/tuned_configs.json").render(),
    }
    for name in args.experiments:
        fn = table.get(name)
        if fn is None:
            print(f"unknown experiment {name!r}; choose from {ALL}",
                  file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        print(fn())
        print(f"[{name} regenerated in {time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
