"""Read-side serving: hit rate and throughput vs pattern × policy.

The write plane answers "how fast can the job put the Table-II bytes on
disk"; this driver answers the mirror question the paper's §I
post-processing motivation implies: once the openPMD series exists,
how fast can a *portal's worth of concurrent analysis clients* get the
bytes back out — and how much does a predictive read cache buy over
re-reading storage every time?

Per (pattern, policy, readers, cache size) the sweep runs a
:class:`~repro.serving.fleet.ReaderFleet` against the Table-II-sized
series of one scaled run and records hit rate, aggregate read
throughput, prefetch accuracy and the Darshan-folded POSIX read volume
underneath the cache.  Points route through the cached sweep executor;
the ambient serving config is part of every cache key, so cells
evaluated under different cache/prefetch settings never alias.

The artifact carries the acceptance checks the serving plane must
hold: Markov beats LRU on repeated/locality patterns, readahead covers
sequential, and the 16-reader adaptive fleet clears 2x the uncached
fleet once the combined working set is cache-resident.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.cluster.presets import dardel
from repro.darshan import DarshanMonitor
from repro.experiments.common import resolve_machine, subset
from repro.experiments.sweep import sweep
from repro.fs import PosixIO, mount
from repro.mpi import VirtualComm
from repro.serving import ReaderFleet, SeriesLayout, ServingConfig
from repro.trace.session import TraceSession
from repro.util.tables import Table
from repro.util.units import MiB, to_gib
from repro.workloads.datamodel import Bit1DataModel
from repro.workloads.presets import paper_use_case

#: access patterns swept (ordering matters for --quick subsetting:
#: endpoints + middle keeps sequential / zipfian / repeated)
PATTERNS = ("sequential", "reverse", "random", "zipfian", "locality",
            "repeated")
#: cache policies swept ("none" is the uncached baseline fleet)
POLICIES = ("none", "lru", "readahead", "markov", "adaptive")
#: concurrent reader counts
READER_COUNTS = (4, 16)
#: shared cache sizes [MiB] — 512 keeps the 16-reader repeated working
#: set thrashing (separates Markov from LRU); 1024 makes it resident
#: (the throughput acceptance point)
CACHE_MIB = (512, 1024)
#: nodes of the producing job (sets the Table-II series size + subfiles)
PRODUCER_NODES = 200
#: requests per reader per fleet run
REQUESTS_PER_READER = 256


def serving_report(machine, nodes: int, pattern: str, policy: str,
                   readers: int, cache_mib: int, prefetch_depth: int,
                   requests_per_reader: int, seed: int,
                   config=None) -> dict:
    """One fleet run: fresh filesystem, fresh cache, exact accounting.

    Module-level and pure so the sweep executor can fork + memoise it.
    """
    m = resolve_machine(machine)
    model = Bit1DataModel(config if config is not None else paper_use_case(),
                          nodes * m.cores_per_node)
    layout = SeriesLayout.from_datamodel(
        model, "/serve/bit1_dat.bp4", n_subfiles=nodes, chunk_bytes=8 * MiB)
    fs = mount(m.storage_named("lfs"))
    comm = VirtualComm(readers, min(readers, m.cores_per_node))
    monitor = DarshanMonitor(readers)
    sess = TraceSession(comm, monitor=monitor)
    posix = PosixIO(fs, comm, trace=sess.bus)
    layout.materialize(fs)
    fleet = ReaderFleet(
        posix, layout, m.node, readers=readers, pattern=pattern,
        config=ServingConfig(cache_bytes=cache_mib * MiB, policy=policy,
                             prefetch_depth=prefetch_depth),
        requests_per_reader=requests_per_reader, seed=seed)
    rep = fleet.run()
    log = monitor.finalize(runtime_seconds=rep.elapsed_s)
    out = rep.to_dict()
    out["series_bytes"] = layout.total_bytes
    out["n_chunks"] = layout.n_chunks
    out["darshan_bytes_read"] = float(log.total_bytes_read())
    return out


@dataclass
class ServingRow:
    """One (pattern, policy, readers, cache size) cell."""

    pattern: str
    policy: str
    readers: int
    cache_mib: int
    hit_rate: float
    agg_throughput_gibps: float
    mean_latency_ms: float
    prefetch_issued: int
    prefetch_used: int
    prefetch_wasted: int
    evictions: int
    bytes_requested_gib: float
    darshan_read_gib: float

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ServingResult:
    """The serving-plane sweep on one machine."""

    machine: str
    series_gib: float
    n_chunks: int
    prefetch_depth: int
    requests_per_reader: int
    seed: int
    rows: list[ServingRow] = field(default_factory=list)
    checks: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def row(self, pattern: str, policy: str, readers: int,
            cache_mib: int) -> ServingRow | None:
        for r in self.rows:
            if (r.pattern, r.policy, r.readers, r.cache_mib) == (
                    pattern, policy, readers, cache_mib):
                return r
        return None

    def _check_cells(self) -> dict:
        """Acceptance checks, evaluated over whichever cells were swept.

        * predictive policies beat plain LRU hit-rate on the repeated
          and locality patterns at the thrashing cache size;
        * sequential readahead covers >= 90% of a sequential scan;
        * the 16-reader adaptive fleet clears 2x the uncached fleet's
          aggregate throughput at its best swept cache size.
        """
        checks: dict = {}
        caches = sorted({r.cache_mib for r in self.rows})
        readerss = sorted({r.readers for r in self.rows})
        if not caches or not readerss:
            return checks
        small = caches[0]
        many = readerss[-1]
        for pat in ("repeated", "locality"):
            for pol in ("markov", "adaptive"):
                a = self.row(pat, pol, many, small)
                b = self.row(pat, "lru", many, small)
                if a is not None and b is not None:
                    checks[f"{pol}_gt_lru_{pat}"] = {
                        "pass": a.hit_rate > b.hit_rate,
                        "hit_rate": a.hit_rate, "lru_hit_rate": b.hit_rate}
        for c in caches:
            r = self.row("sequential", "readahead", many, c)
            if r is not None:
                checks["readahead_sequential"] = {
                    "pass": r.hit_rate >= 0.9, "hit_rate": r.hit_rate,
                    "cache_mib": c}
                break
        best = None
        for c in caches:
            a = self.row("repeated", "adaptive", many, c)
            b = self.row("repeated", "none", many, c)
            if a is None or b is None or not b.agg_throughput_gibps:
                continue
            ratio = a.agg_throughput_gibps / b.agg_throughput_gibps
            if best is None or ratio > best[0]:
                best = (ratio, c)
        if best is not None:
            checks[f"adaptive{many}_speedup"] = {
                "pass": best[0] >= 2.0, "speedup": best[0],
                "cache_mib": best[1], "readers": many}
        return checks

    def to_artifact(self) -> dict:
        return {
            "experiment": "serving",
            "machine": self.machine,
            "series_gib": self.series_gib,
            "n_chunks": self.n_chunks,
            "prefetch_depth": self.prefetch_depth,
            "requests_per_reader": self.requests_per_reader,
            "seed": self.seed,
            "checks": self.checks,
            "rows": [r.to_dict() for r in self.rows],
        }

    def save_artifact(self, path: str) -> str:
        d = os.path.dirname(path)
        if d:
            os.makedirs(d, exist_ok=True)
        with open(path, "w") as f:
            json.dump(self.to_artifact(), f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    def to_table(self) -> Table:
        t = Table(["pattern", "policy", "readers", "cache [MiB]", "hit",
                   "thr [GiB/s]", "lat [ms]", "pf used/issued", "evict",
                   "darshan read [GiB]"],
                  title=f"Serving plane on {self.machine} "
                        f"({self.series_gib:.2f} GiB series, "
                        f"{self.n_chunks} chunks, "
                        f"{self.requests_per_reader} req/reader)")
        for r in self.rows:
            t.add_row([r.pattern, r.policy, r.readers, r.cache_mib,
                       f"{r.hit_rate:.3f}",
                       f"{r.agg_throughput_gibps:.2f}",
                       f"{r.mean_latency_ms:.2f}",
                       f"{r.prefetch_used}/{r.prefetch_issued}",
                       r.evictions, f"{r.darshan_read_gib:.2f}"])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        for name, c in sorted(self.checks.items()):
            status = "pass" if c.get("pass") else "FAIL"
            detail = ", ".join(f"{k}={v:.3f}" if isinstance(v, float)
                               else f"{k}={v}" for k, v in c.items()
                               if k != "pass")
            out += f"\n  check {name}: {status} ({detail})"
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def run_serving(machine=None, patterns=PATTERNS, policies=POLICIES,
                reader_counts=READER_COUNTS, cache_mib=CACHE_MIB,
                prefetch_depth: int = 2, nodes: int = PRODUCER_NODES,
                requests_per_reader: int = REQUESTS_PER_READER,
                quick: bool = False, seed: int = 0, config=None,
                artifact_path: str | None = None) -> ServingResult:
    """Sweep pattern × policy × readers × cache size over one series."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    patterns = subset(tuple(patterns), quick)
    policies = subset(tuple(policies), quick)
    reader_counts = subset(tuple(reader_counts), quick)
    cache_mib = subset(tuple(cache_mib), quick)
    if quick:
        requests_per_reader = min(requests_per_reader, 96)

    points = [{"machine": machine, "nodes": nodes, "pattern": pat,
               "policy": pol, "readers": n, "cache_mib": c,
               "prefetch_depth": prefetch_depth,
               "requests_per_reader": requests_per_reader, "seed": seed,
               "config": config}
              for pat in patterns for pol in policies
              for n in reader_counts for c in cache_mib]
    reports = sweep(serving_report, points)

    result = ServingResult(
        machine=machine.name,
        series_gib=to_gib(reports[0]["series_bytes"]) if reports else 0.0,
        n_chunks=reports[0]["n_chunks"] if reports else 0,
        prefetch_depth=prefetch_depth,
        requests_per_reader=requests_per_reader, seed=seed)
    for point, rep in zip(points, reports):
        result.rows.append(ServingRow(
            pattern=point["pattern"], policy=point["policy"],
            readers=point["readers"], cache_mib=point["cache_mib"],
            hit_rate=rep["hit_rate"],
            agg_throughput_gibps=to_gib(rep["agg_throughput_bps"]),
            mean_latency_ms=rep["mean_latency_s"] * 1e3,
            prefetch_issued=rep["prefetch_issued"],
            prefetch_used=rep["prefetch_used"],
            prefetch_wasted=rep["prefetch_wasted"],
            evictions=rep["evictions"],
            bytes_requested_gib=to_gib(rep["bytes_requested"]),
            darshan_read_gib=to_gib(rep["darshan_bytes_read"])))

    result.checks = result._check_cells()
    failed = [k for k, c in result.checks.items() if not c.get("pass")]
    result.notes.append(
        f"{len(result.checks) - len(failed)}/{len(result.checks)} "
        f"acceptance checks pass"
        + (f"; failing: {failed}" if failed else ""))
    if artifact_path is not None:
        result.save_artifact(artifact_path)
        result.notes.append(f"artifact written to {artifact_path}")
    return result


def main() -> None:  # pragma: no cover
    print(run_serving(artifact_path="results/serving.json").render())


if __name__ == "__main__":  # pragma: no cover
    main()
