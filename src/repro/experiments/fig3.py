"""Fig. 3 — original file I/O vs openPMD+BP4 on Dardel, 1-200 nodes.

The original path "increases for small runs until the peak throughput is
reached [then] decreases as the cost associated with metadata write
increases"; openPMD+BP4 "maintains a more stable throughput" thanks to
the parallel aggregation strategy, starting at ~0.6 GiB/s on one node.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.presets import dardel
from repro.experiments.common import ExperimentResult, SeriesResult, resolve_machine
from repro.experiments.paper_data import FIG3_BP4_START_GIB, NODE_COUNTS
from repro.experiments.points import openpmd_report, original_report
from repro.experiments.sweep import sweep


def run_fig3(node_counts: Sequence[int] = NODE_COUNTS,
             machine=None, seed: int = 0) -> ExperimentResult:
    """Reproduce Fig. 3 on Dardel (or another machine)."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    node_counts = list(node_counts)
    result = ExperimentResult(
        name=f"Fig 3: Original vs openPMD+BP4 Write Throughput on "
             f"{machine.name} (GiB/s)",
        x_name="nodes",
    )
    origs = sweep(original_report,
                  [{"machine": machine, "nodes": n, "seed": seed}
                   for n in node_counts])
    # the figure's BP4 configuration aggregates per node on both
    # series (explicit NumAgg = nodes)
    bp4s = sweep(openpmd_report,
                 [{"machine": machine, "nodes": n, "num_aggregators": n,
                   "seed": seed} for n in node_counts])
    original = SeriesResult(label="BIT1 Original I/O")
    bp4 = SeriesResult(label="BIT1 openPMD + BP4")
    for nodes, rep_o, rep_p in zip(node_counts, origs, bp4s):
        original.add(nodes, rep_o["gib"])
        bp4.add(nodes, rep_p["gib"])
    result.series += [original, bp4]
    result.notes.append(
        f"paper: BP4 starts at {FIG3_BP4_START_GIB} GiB/s on 1 node; "
        "original rises to a peak then declines (metadata cost)")
    return result


def main() -> None:  # pragma: no cover
    print(run_fig3().render())


if __name__ == "__main__":  # pragma: no cover
    main()
