"""Fig. 3 — original file I/O vs openPMD+BP4 on Dardel, 1-200 nodes.

The original path "increases for small runs until the peak throughput is
reached [then] decreases as the cost associated with metadata write
increases"; openPMD+BP4 "maintains a more stable throughput" thanks to
the parallel aggregation strategy, starting at ~0.6 GiB/s on one node.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.presets import dardel
from repro.darshan.report import write_throughput_gib
from repro.experiments.common import ExperimentResult, SeriesResult, resolve_machine
from repro.experiments.paper_data import FIG3_BP4_START_GIB, NODE_COUNTS
from repro.workloads.runner import run_openpmd_scaled, run_original_scaled


def run_fig3(node_counts: Sequence[int] = NODE_COUNTS,
             machine=None, seed: int = 0) -> ExperimentResult:
    """Reproduce Fig. 3 on Dardel (or another machine)."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    result = ExperimentResult(
        name=f"Fig 3: Original vs openPMD+BP4 Write Throughput on "
             f"{machine.name} (GiB/s)",
        x_name="nodes",
    )
    original = SeriesResult(label="BIT1 Original I/O")
    bp4 = SeriesResult(label="BIT1 openPMD + BP4")
    for nodes in node_counts:
        res_o = run_original_scaled(machine, nodes, seed=seed)
        original.add(nodes, write_throughput_gib(res_o.log))
        # the figure's BP4 configuration aggregates per node on both
        # series (explicit NumAgg = nodes)
        res_p = run_openpmd_scaled(machine, nodes, num_aggregators=nodes,
                                   seed=seed)
        bp4.add(nodes, write_throughput_gib(res_p.log))
    result.series += [original, bp4]
    result.notes.append(
        f"paper: BP4 starts at {FIG3_BP4_START_GIB} GiB/s on 1 node; "
        "original rises to a peak then declines (metadata cost)")
    return result


def main() -> None:  # pragma: no cover
    print(run_fig3().render())


if __name__ == "__main__":  # pragma: no cover
    main()
