"""Fig. 7 — write throughput with Blosc compression and one aggregator.

"BIT1 Original I/O displays an inconsistent performance pattern …
eventually leading to a peak write throughput of approximately 0.54
GiB/s with 40 nodes.  In contrast, both BIT1 openPMD + BP4
configurations demonstrate enhanced scalability and efficiency, with
improved performance … from 1 to 10 nodes.  Although compression and
aggregation enhance data storage efficiency, they also introduce
overhead, resulting in slightly reduced performance compared to the
uncompressed configuration (BIT1 Original I/O) at higher node counts,
which can be seen from 10 to 50 nodes."
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.presets import dardel
from repro.experiments.common import ExperimentResult, SeriesResult, resolve_machine
from repro.experiments.paper_data import FIG7_CROSSOVER_RANGE, NODE_COUNTS
from repro.experiments.points import openpmd_report, original_report
from repro.experiments.sweep import sweep


def run_fig7(node_counts: Sequence[int] = NODE_COUNTS,
             machine=None, seed: int = 0) -> ExperimentResult:
    """Reproduce Fig. 7: original vs BP4 + 1 aggregator (± Blosc)."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    node_counts = list(node_counts)
    result = ExperimentResult(
        name=f"Fig 7: Write Throughput with Blosc + 1 Aggregator on "
             f"{machine.name} (GiB/s)",
        x_name="nodes",
    )
    origs = sweep(original_report,
                  [{"machine": machine, "nodes": n, "seed": seed}
                   for n in node_counts])
    bp4s = sweep(openpmd_report,
                 [{"machine": machine, "nodes": n, "num_aggregators": 1,
                   "compressor": c, "seed": seed}
                  for n in node_counts for c in (None, "blosc")])
    original = SeriesResult(label="BIT1 Original I/O")
    bp4_plain = SeriesResult(label="openPMD+BP4 + 1 AGGR")
    bp4_blosc = SeriesResult(label="openPMD+BP4 + Blosc + 1 AGGR")
    for i, nodes in enumerate(node_counts):
        original.add(nodes, origs[i]["gib"])
        bp4_plain.add(nodes, bp4s[2 * i]["gib"])
        bp4_blosc.add(nodes, bp4s[2 * i + 1]["gib"])
    result.series += [original, bp4_plain, bp4_blosc]
    result.notes.append(
        f"paper: the original curve overtakes the single-aggregator BP4 "
        f"configurations between {FIG7_CROSSOVER_RANGE[0]} and "
        f"{FIG7_CROSSOVER_RANGE[1]} nodes")
    return result


def main() -> None:  # pragma: no cover
    print(run_fig7().render())


if __name__ == "__main__":  # pragma: no cover
    main()
