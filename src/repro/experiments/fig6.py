"""Fig. 6 — write throughput vs number of aggregators, 200 nodes.

"As the number of aggregators increases, there is a consistent
improvement in write throughput until reaching a peak at 400 aggregators
(equivalent to two aggregators per node), achieving 15.80 GiB/s.  Beyond
this point there is a slight decline … even [at] the highest tested
aggregation (25600), the write throughput remains significantly higher
than the starting point [0.59 GiB/s], at 3.87 GiB/s."
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.presets import dardel
from repro.experiments.common import ExperimentResult, SeriesResult, resolve_machine
from repro.experiments.paper_data import FIG6_ANCHORS, FIG6_SWEEP
from repro.experiments.points import openpmd_report
from repro.experiments.sweep import sweep


def run_fig6(aggregators: Sequence[int] = FIG6_SWEEP, nodes: int = 200,
             machine=None, seed: int = 0) -> ExperimentResult:
    """Reproduce the aggregator sweep."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    aggregators = list(aggregators)
    result = ExperimentResult(
        name=f"Fig 6: openPMD+BP4 Write Throughput vs Aggregators on "
             f"{machine.name} ({nodes} nodes, GiB/s)",
        x_name="aggregators",
    )
    reports = sweep(openpmd_report,
                    [{"machine": machine, "nodes": nodes,
                      "num_aggregators": m, "seed": seed}
                     for m in aggregators])
    series = SeriesResult(label="BIT1 openPMD + BP4")
    for m, rep in zip(aggregators, reports):
        series.add(m, rep["gib"])
    result.series.append(series)
    result.notes.append(
        "paper anchors: " + ", ".join(f"{m} -> {v} GiB/s"
                                      for m, v in FIG6_ANCHORS.items()))
    peak_x, peak_y = series.peak()
    result.notes.append(f"measured peak: {peak_y:.2f} GiB/s at {peak_x} "
                        f"aggregators (paper: 15.80 at 400)")
    return result


def main() -> None:  # pragma: no cover
    print(run_fig6().render(y_format=lambda v: f"{v:.2f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
