"""Process-parallel sweep executor with a content-addressed result cache.

The experiment drivers evaluate many independent (machine, nodes,
option) points of the simulated I/O model.  Points are pure functions of
their parameters and the model source, so this module gives every driver
two things for free:

* **Parallelism** — cache misses are evaluated in a process pool
  (forked workers, one point per task), so an 8-point figure costs one
  slowest-point wall-clock instead of the serial sum.
* **Memoisation** — each result is stored on disk under a key derived
  from the *point function's identity, its canonicalised parameters and
  a fingerprint of the whole* ``repro`` *source tree*.  Re-running any
  driver with unchanged inputs replays results without evaluating the
  model; editing any model source invalidates every key at once, and
  changing one parameter invalidates only the affected points.

Point functions must be module-level (picklable by reference) and return
small picklable values.  Environment knobs:

* ``REPRO_SWEEP_JOBS`` — worker count (``1`` forces in-process serial);
* ``REPRO_SWEEP_CACHE`` — cache directory (empty string disables the
  cache entirely; default ``<repo>/results/.sweep-cache``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

#: src/repro — the tree whose content addresses every cached result
_SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPO_ROOT = os.path.dirname(os.path.dirname(_SRC_ROOT))

_fingerprint: str | None = None

log = logging.getLogger("repro.sweep")


def source_fingerprint() -> str:
    """sha256 over every ``repro`` source file (relative path + content).

    Results are addressed by *what computed them*, not just by their
    parameters: any edit to the model invalidates the whole cache.
    Computed once per process; long-lived services that must notice
    on-disk source edits call :func:`invalidate_fingerprint` first.
    """
    global _fingerprint
    if _fingerprint is None:
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(_SRC_ROOT):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                h.update(os.path.relpath(path, _SRC_ROOT).encode())
                with open(path, "rb") as f:
                    h.update(f.read())
        _fingerprint = h.hexdigest()
    return _fingerprint


def invalidate_fingerprint() -> None:
    """Drop the memoised source fingerprint; the next key recomputes it.

    A process that outlives edits to ``src/repro`` (the tuner's
    regression mode, a notebook kernel, any long-lived service) would
    otherwise keep trusting the fingerprint captured at first use and
    silently serve cache entries computed by a *different* model.
    """
    global _fingerprint
    _fingerprint = None


def _canonical_key(key: Any):
    """Canonical, type-tagged form of one dict key.

    ``str()``-coercion (the old scheme) let ``{1: "x"}`` and
    ``{"1": "x"}`` alias one cache key; every key is now tagged with
    its type so distinct keys stay distinct.  Numbers share one "num"
    tag because Python dict keys already identify ``True == 1 == 1.0``
    (they cannot coexist in one dict), so equal dicts must keep equal
    canonical forms.
    """
    if isinstance(key, str):
        return ["str", key]
    if isinstance(key, (bool, int, float)):
        f = float(key)
        if f != f:
            return ["num", "nan"]
        if f in (float("inf"), float("-inf")):
            return ["num", repr(f)]
        if f == int(f):
            return ["num", int(key)]
        return ["num", repr(f)]
    if key is None:
        return ["none"]
    if isinstance(key, tuple):
        return ["tuple", [_canonical_key(k) for k in key]]
    raise TypeError(
        f"cannot canonicalise a {type(key).__name__} dict key into a "
        "sweep cache key")


def _canonical(value: Any):
    """Reduce a parameter value to a canonical strict-JSON-able form.

    Containers are wrapped in tagged objects (``__map__``/``__seq__``/
    ``__dataclass__``) so no user value can forge the canonical form of
    a different type, dict keys keep their type (see
    :func:`_canonical_key`), non-finite floats become explicit tags
    (``json.dumps`` would otherwise emit non-JSON ``NaN``/``Infinity``
    tokens), and 0-d numpy arrays — which *have* an ``__len__``
    attribute but no length — canonicalise like the scalar they wrap
    instead of failing keying and silently bypassing the cache.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {"__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
                "fields": {f.name: _canonical(getattr(value, f.name))
                           for f in dataclasses.fields(value)}}
    if isinstance(value, dict):
        items = [[_canonical_key(k), _canonical(v)]
                 for k, v in value.items()]
        items.sort(key=lambda kv: json.dumps(kv[0]))
        return {"__map__": items}
    if isinstance(value, (list, tuple)):
        return {"__seq__": [_canonical(v) for v in value]}
    if isinstance(value, float) and not isinstance(value, bool):
        if value != value:
            return ["float", "nan"]
        if value in (float("inf"), float("-inf")):
            return ["float", repr(value)]
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if hasattr(value, "item") and getattr(value, "ndim", None) == 0:
        return _canonical(value.item())  # numpy scalar / 0-d array
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return _canonical(value.item())  # non-numpy scalar wrapper
    raise TypeError(
        f"cannot canonicalise a {type(value).__name__} into a sweep cache "
        "key; pass plain data / dataclasses or disable the cache")


def point_key(fn: Callable, params: dict) -> str:
    """Content-addressed cache key of one sweep point.

    The ambient memory-plane configuration is part of the key: the plane
    never changes simulated results, but quotas do change what a point
    *returns alongside them* (spill counts, high-water marks, ``mem``
    events), so results computed under different budgets must not alias.
    The ambient serving-plane config (cache size, policy, prefetch
    depth) is keyed for the same reason: points evaluated under
    different read-cache configurations must never alias.
    """
    from repro.mem import fingerprint as mem_fingerprint
    from repro.serving.config import fingerprint as serving_fingerprint
    spec = {
        "fn": f"{fn.__module__}.{fn.__qualname__}",
        "params": _canonical(params),
        "src": source_fingerprint(),
        "mem": mem_fingerprint(),
        "serving": serving_fingerprint(),
    }
    # allow_nan=False: non-finite floats were tagged by _canonical, so a
    # bare NaN here means a canonicalisation hole — fail loudly
    return hashlib.sha256(
        json.dumps(spec, sort_keys=True, allow_nan=False).encode()
    ).hexdigest()


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env is not None:
        return env  # empty string disables caching
    return os.path.join(_REPO_ROOT, "results", ".sweep-cache")


def default_jobs() -> int:
    env = os.environ.get("REPRO_SWEEP_JOBS")
    if env:
        return max(int(env), 1)
    return os.cpu_count() or 1


@dataclass
class SweepStats:
    """What the most recent :func:`sweep` call actually did."""

    evaluated: int = 0
    cached: int = 0
    jobs: int = 1


#: stats of the most recent sweep() in this process (tests and drivers
#: read this to verify cache hits / parallel fan-out)
LAST_STATS = SweepStats()

#: cumulative stats since :func:`reset_stats` — drivers issue several
#: sweep() calls per figure, and "did the second invocation evaluate
#: anything?" is a question about their sum
SESSION_STATS = SweepStats()


def reset_stats() -> None:
    """Zero both stat counters (start of a measured driver invocation)."""
    global LAST_STATS, SESSION_STATS
    LAST_STATS = SweepStats()
    SESSION_STATS = SweepStats()


def _evaluate(task: tuple) -> Any:
    fn, params = task
    return fn(**params)


def _load(path: str):
    with open(path, "rb") as f:
        return pickle.load(f)


def _store(cache_dir: str, key: str, value: Any) -> None:
    """Best-effort atomic cache write (concurrent sweeps may race)."""
    shard = os.path.join(cache_dir, key[:2])
    try:
        os.makedirs(shard, exist_ok=True)
        tmp = os.path.join(shard, f".{key}.{os.getpid()}.tmp")
        with open(tmp, "wb") as f:
            pickle.dump(value, f)
        os.replace(tmp, os.path.join(shard, key + ".pkl"))
    except (OSError, pickle.PickleError):
        pass


@dataclass
class BatchResult:
    """What one :func:`sweep_batch` call returned, probe by probe."""

    #: results in point order
    results: list
    #: per-point: True when the result came from the cache
    hits: list[bool]
    #: the evaluated/cached split of this batch
    stats: SweepStats

    @property
    def cached_fraction(self) -> float:
        """Fraction of probes served from cache (1.0 for an empty batch)."""
        total = len(self.hits)
        return sum(self.hits) / total if total else 1.0


def sweep_batch(fn: Callable, points: Sequence[dict],
                jobs: int | None = None,
                cache_dir: str | None = None) -> BatchResult:
    """Evaluate ``fn(**p)`` for every point, parallel and memoised.

    The batch-probe API behind :func:`sweep`: identical semantics, but
    the return value carries the per-point hit/miss split so callers
    that issue many small batches (the autotuner) can account probes
    without racing on the module-level stats globals.
    """
    global LAST_STATS
    points = list(points)
    if jobs is None:
        jobs = default_jobs()
    if cache_dir is None:
        cache_dir = default_cache_dir()
    results: list = [None] * len(points)
    keys: list[str | None] = [None] * len(points)
    misses: list[int] = []
    for i, params in enumerate(points):
        if cache_dir:
            try:
                keys[i] = point_key(fn, params)
            except TypeError:
                pass  # unkeyable parameters: evaluate, skip the cache
        if keys[i] is not None:
            path = os.path.join(cache_dir, keys[i][:2], keys[i] + ".pkl")
            try:
                results[i] = _load(path)
                continue
            except (OSError, pickle.PickleError, EOFError):
                pass
        misses.append(i)
    stats = SweepStats(evaluated=len(misses),
                       cached=len(points) - len(misses))
    if stats.cached:
        log.info("sweep %s: %d/%d points served from cache",
                 getattr(fn, "__qualname__", fn), stats.cached, len(points))
    if misses:
        tasks = [(fn, points[i]) for i in misses]
        if jobs > 1 and len(misses) > 1:
            stats.jobs = min(jobs, len(misses))
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork: inherit default
                ctx = None
            with ProcessPoolExecutor(max_workers=stats.jobs,
                                     mp_context=ctx) as pool:
                values = list(pool.map(_evaluate, tasks))
        else:
            values = [_evaluate(t) for t in tasks]
        for i, value in zip(misses, values):
            results[i] = value
            if keys[i] is not None:
                _store(cache_dir, keys[i], value)
    LAST_STATS = stats
    SESSION_STATS.evaluated += stats.evaluated
    SESSION_STATS.cached += stats.cached
    SESSION_STATS.jobs = max(SESSION_STATS.jobs, stats.jobs)
    missed = set(misses)
    return BatchResult(results=results,
                       hits=[i not in missed for i in range(len(points))],
                       stats=stats)


def sweep(fn: Callable, points: Sequence[dict], jobs: int | None = None,
          cache_dir: str | None = None) -> list:
    """Evaluate ``fn(**p)`` for every point, parallel and memoised.

    Returns results in point order.  Cached points are never evaluated;
    misses run in a forked process pool when more than one is pending
    (and ``jobs`` allows it), in the caller's process otherwise.
    :data:`LAST_STATS` records the evaluated/cached split.
    """
    return sweep_batch(fn, points, jobs=jobs, cache_dir=cache_dir).results
