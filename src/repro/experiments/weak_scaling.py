"""Weak-scaling study — an extension of the paper's evaluation.

The paper's runs keep the physical problem fixed (30 M particles) while
adding nodes, so per-rank I/O shrinks.  Production campaigns usually
grow the problem with the machine; this driver scales the workload with
the node count (fixed particles *per rank*) and asks the question the
paper's §VI leaves open: does the openPMD+BP4 path sustain per-node
write throughput under weak scaling, where the original path cannot?

Metric: per-node write throughput (GiB/s/node).  Ideal weak scaling is
a flat line.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.presets import dardel
from repro.experiments.common import ExperimentResult, SeriesResult, resolve_machine
from repro.experiments.points import openpmd_report, original_report
from repro.experiments.sweep import sweep
from repro.workloads.presets import paper_use_case

#: per-rank load of the paper's 200-node configuration, held constant
PARTICLES_PER_RANK = 30_000_000 // 25_600
CELLS_PER_RANK = 100_000 // 25_600 + 1


def scaled_config(nodes: int, ranks_per_node: int = 128):
    """The use case grown to keep per-rank load constant."""
    ranks = nodes * ranks_per_node
    base = paper_use_case()
    ncells = CELLS_PER_RANK * ranks
    per_cell = max(PARTICLES_PER_RANK * ranks
                   // (ncells * len(base.species)), 1)
    return base.with_(
        ncells=ncells,
        length=base.length * ncells / base.ncells,
        species=tuple(
            s.__class__(s.name, s.mass, s.charge, s.temperature_ev,
                        per_cell, density=s.density)
            for s in base.species
        ),
        name=f"bit1-weak-{nodes}nodes",
    )


def run_weak_scaling(node_counts: Sequence[int] = (1, 5, 20, 50, 200),
                     machine=None, seed: int = 0) -> ExperimentResult:
    """Per-node write throughput with the problem growing with nodes."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    result = ExperimentResult(
        name=f"Weak scaling on {machine.name}: per-node write throughput "
             f"(GiB/s/node, fixed particles per rank)",
        x_name="nodes",
    )
    node_counts = list(node_counts)
    configs = {n: scaled_config(n) for n in node_counts}
    origs = sweep(original_report,
                  [{"machine": machine, "nodes": n, "config": configs[n],
                    "seed": seed} for n in node_counts])
    bp4s = sweep(openpmd_report,
                 [{"machine": machine, "nodes": n, "config": configs[n],
                   "num_aggregators": n, "seed": seed} for n in node_counts])
    original = SeriesResult(label="BIT1 Original I/O")
    bp4 = SeriesResult(label="BIT1 openPMD + BP4")
    for nodes, rep_o, rep_p in zip(node_counts, origs, bp4s):
        original.add(nodes, rep_o["gib"] / nodes)
        bp4.add(nodes, rep_p["gib"] / nodes)
    result.series += [original, bp4]
    result.notes.append(
        "ideal weak scaling = flat; the original path's per-node rate "
        "collapses with the fsync queue depth while BP4 degrades gently "
        "toward the filesystem's aggregate ceiling")
    return result


def main() -> None:  # pragma: no cover
    print(run_weak_scaling().render(y_format=lambda v: f"{v:.4f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
