"""Fig. 5 — average per-process I/O cost split on 200 nodes.

"The average time spent on metadata operations per process stood at
17.868 seconds in the BIT1 Original I/O simulation.  However, with
openPMD + BP4, this time plummeted to a mere 0.014 seconds per process
… a reduction of approximately 99.92%.  [Write time] significantly
decreased [from 1.043 s] to 0.009 seconds … a reduction of around
99.14%."  Read time stays consistent (checkpoint restart reads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.presets import dardel
from repro.darshan.report import CostSplit
from repro.experiments.common import resolve_machine
from repro.experiments.paper_data import FIG5_BP4, FIG5_ORIGINAL
from repro.experiments.points import openpmd_report, original_report
from repro.experiments.sweep import sweep
from repro.util.tables import Table


@dataclass
class Fig5Result:
    """Measured and paper cost splits plus derived reductions."""

    machine: str
    nodes: int
    original: CostSplit
    bp4: CostSplit

    @property
    def meta_reduction(self) -> float:
        if self.original.meta_seconds == 0:
            return 0.0
        return 1.0 - self.bp4.meta_seconds / self.original.meta_seconds

    @property
    def write_reduction(self) -> float:
        if self.original.write_seconds == 0:
            return 0.0
        return 1.0 - self.bp4.write_seconds / self.original.write_seconds

    def to_table(self) -> Table:
        t = Table(["category", "original (s)", "openPMD+BP4 (s)",
                   "paper original", "paper BP4"],
                  title=f"Fig 5: Avg I/O Cost Per Process on {self.machine} "
                        f"({self.nodes} nodes)")
        rows = (
            ("reads", self.original.read_seconds, self.bp4.read_seconds,
             FIG5_ORIGINAL["read"], FIG5_BP4["read"]),
            ("metadata", self.original.meta_seconds, self.bp4.meta_seconds,
             FIG5_ORIGINAL["meta"], FIG5_BP4["meta"]),
            ("writes", self.original.write_seconds, self.bp4.write_seconds,
             FIG5_ORIGINAL["write"], FIG5_BP4["write"]),
        )
        for name, o, p, po, pp in rows:
            t.add_row([name, f"{o:.3f}", f"{p:.4f}", po, pp])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        out += (f"\n  metadata reduction: {self.meta_reduction:.2%} "
                f"(paper: 99.92%)")
        out += (f"\n  write reduction: {self.write_reduction:.2%} "
                f"(paper: 99.14%)")
        return out


def run_fig5(nodes: int = 200, machine=None, seed: int = 0) -> Fig5Result:
    """Reproduce Fig. 5 (per-process read/meta/write seconds)."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    [rep_o] = sweep(original_report,
                    [{"machine": machine, "nodes": nodes, "seed": seed}])
    [rep_p] = sweep(openpmd_report,
                    [{"machine": machine, "nodes": nodes,
                      "num_aggregators": nodes, "seed": seed}])
    return Fig5Result(
        machine=machine.name,
        nodes=nodes,
        original=rep_o["split"],
        bp4=rep_p["split"],
    )


def main() -> None:  # pragma: no cover
    print(run_fig5().render())


if __name__ == "__main__":  # pragma: no cover
    main()
