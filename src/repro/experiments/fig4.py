"""Fig. 4 — BIT1 configurations vs the IOR benchmark on Dardel.

Adds the two Table I IOR reference lines (FilePerProc and shared file,
``-a POSIX -C -e``) to the Fig. 3 comparison.  "BIT1 Original I/O …
fail[s] to achieve competitive levels compared to the IOR benchmarks.
Conversely, BIT1 openPMD + BP4 with aggregation demonstrates superior
performance."
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.presets import dardel
from repro.experiments.common import ExperimentResult, SeriesResult, resolve_machine
from repro.experiments.paper_data import NODE_COUNTS, RANKS_PER_NODE
from repro.experiments.points import ior_gib, openpmd_report, original_report
from repro.experiments.sweep import sweep


def run_fig4(node_counts: Sequence[int] = NODE_COUNTS,
             machine=None, seed: int = 0) -> ExperimentResult:
    """Reproduce Fig. 4: BIT1 curves plus IOR reference curves."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    node_counts = list(node_counts)
    result = ExperimentResult(
        name=f"Fig 4: BIT1 vs IOR Write Throughput on {machine.name} (GiB/s)",
        x_name="nodes",
    )
    origs = sweep(original_report,
                  [{"machine": machine, "nodes": n, "seed": seed}
                   for n in node_counts])
    bp4s = sweep(openpmd_report,
                 [{"machine": machine, "nodes": n, "num_aggregators": n,
                   "seed": seed} for n in node_counts])
    iors = sweep(ior_gib,
                 [{"machine": machine, "ntasks": n * RANKS_PER_NODE,
                   "file_per_proc": fpp, "seed": seed}
                  for n in node_counts for fpp in (True, False)])
    series = {
        "BIT1 Original I/O": SeriesResult(label="BIT1 Original I/O"),
        "BIT1 openPMD + BP4": SeriesResult(label="BIT1 openPMD + BP4"),
        "IOR FilePerProc": SeriesResult(label="IOR FilePerProc"),
        "IOR Shared": SeriesResult(label="IOR Shared"),
    }
    for i, nodes in enumerate(node_counts):
        series["BIT1 Original I/O"].add(nodes, origs[i]["gib"])
        series["BIT1 openPMD + BP4"].add(nodes, bp4s[i]["gib"])
        series["IOR FilePerProc"].add(nodes, iors[2 * i])
        series["IOR Shared"].add(nodes, iors[2 * i + 1])
    result.series = list(series.values())
    result.notes.append(
        "Table I commands: 'ior -N=<tasks> -a POSIX [-F] -C -e'")
    result.notes.append(
        "IOR FilePerProc at 25600 tasks matches the extreme-aggregation "
        "regime of Fig. 6 (25600 files)")
    return result


def main() -> None:  # pragma: no cover
    print(run_fig4().render())


if __name__ == "__main__":  # pragma: no cover
    main()
