"""Fig. 4 — BIT1 configurations vs the IOR benchmark on Dardel.

Adds the two Table I IOR reference lines (FilePerProc and shared file,
``-a POSIX -C -e``) to the Fig. 3 comparison.  "BIT1 Original I/O …
fail[s] to achieve competitive levels compared to the IOR benchmarks.
Conversely, BIT1 openPMD + BP4 with aggregation demonstrates superior
performance."
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.presets import dardel
from repro.darshan.report import write_throughput_gib
from repro.experiments.common import ExperimentResult, SeriesResult, resolve_machine
from repro.experiments.paper_data import NODE_COUNTS, RANKS_PER_NODE
from repro.ior.benchmark import run_ior
from repro.ior.config import table1_file_per_proc, table1_shared
from repro.workloads.runner import run_openpmd_scaled, run_original_scaled


def run_fig4(node_counts: Sequence[int] = NODE_COUNTS,
             machine=None, seed: int = 0) -> ExperimentResult:
    """Reproduce Fig. 4: BIT1 curves plus IOR reference curves."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    result = ExperimentResult(
        name=f"Fig 4: BIT1 vs IOR Write Throughput on {machine.name} (GiB/s)",
        x_name="nodes",
    )
    series = {
        "BIT1 Original I/O": SeriesResult(label="BIT1 Original I/O"),
        "BIT1 openPMD + BP4": SeriesResult(label="BIT1 openPMD + BP4"),
        "IOR FilePerProc": SeriesResult(label="IOR FilePerProc"),
        "IOR Shared": SeriesResult(label="IOR Shared"),
    }
    for nodes in node_counts:
        ntasks = nodes * RANKS_PER_NODE
        res_o = run_original_scaled(machine, nodes, seed=seed)
        series["BIT1 Original I/O"].add(nodes, write_throughput_gib(res_o.log))
        res_p = run_openpmd_scaled(machine, nodes, num_aggregators=nodes,
                                   seed=seed)
        series["BIT1 openPMD + BP4"].add(nodes, write_throughput_gib(res_p.log))
        fpp = run_ior(machine, table1_file_per_proc(ntasks), seed=seed)
        series["IOR FilePerProc"].add(nodes, fpp.write_gib_s)
        shared = run_ior(machine, table1_shared(ntasks), seed=seed)
        series["IOR Shared"].add(nodes, shared.write_gib_s)
    result.series = list(series.values())
    result.notes.append(
        "Table I commands: 'ior -N=<tasks> -a POSIX [-F] -C -e'")
    result.notes.append(
        "IOR FilePerProc at 25600 tasks matches the extreme-aggregation "
        "regime of Fig. 6 (25600 files)")
    return result


def main() -> None:  # pragma: no cover
    print(run_fig4().render())


if __name__ == "__main__":  # pragma: no cover
    main()
