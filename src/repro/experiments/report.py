"""Aggregate report generator: one markdown document for the whole
evaluation.

Collects the archived experiment outputs from ``results/`` (written by
the benchmark harness) into ``results/REPORT.md``, with the paper's
anchors inlined — a single artifact a reviewer can read top to bottom.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.paper_data import (
    FIG2_ANCHORS,
    FIG5_BP4,
    FIG5_ORIGINAL,
    FIG6_ANCHORS,
    FIG9_BEST_SECONDS,
    TABLE2_BLOSC_SAVINGS_1NODE,
    TABLE2_BLOSC_SAVINGS_200NODES,
)

SECTIONS: tuple[tuple[str, str, str], ...] = (
    ("fig2", "Fig. 2 — Original file I/O on three machines",
     "Paper anchors: " + "; ".join(
         f"{m}: {a[1]}→{a[200]} GiB/s" for m, a in FIG2_ANCHORS.items())),
    ("fig3", "Fig. 3 — Original vs openPMD+BP4 (Dardel)",
     "Paper: BP4 starts at 0.6 GiB/s; original peaks then declines."),
    ("fig4", "Fig. 4 — BIT1 vs IOR",
     "Paper: original uncompetitive with IOR; BP4+aggregation superior."),
    ("fig5", "Fig. 5 — Per-process I/O cost split (200 nodes)",
     f"Paper: metadata {FIG5_ORIGINAL['meta']} s → {FIG5_BP4['meta']} s "
     f"(−99.92 %); writes {FIG5_ORIGINAL['write']} → {FIG5_BP4['write']} s."),
    ("fig6", "Fig. 6 — Aggregator sweep (200 nodes)",
     "Paper anchors: " + ", ".join(f"{m} → {v} GiB/s"
                                   for m, v in FIG6_ANCHORS.items())),
    ("fig7", "Fig. 7 — Blosc + 1 aggregator",
     "Paper: original overtakes between 10 and 50 nodes."),
    ("fig8", "Fig. 8 — profiling.json memory copies",
     "Paper: memory copies entirely eliminated with compression."),
    ("fig9", "Fig. 9 — Lustre striping grid",
     f"Paper best value: {FIG9_BEST_SECONDS} s per write op."),
    ("table1", "Table I — IOR command lines", ""),
    ("table2", "Table II — File census",
     f"Paper: Blosc saves {TABLE2_BLOSC_SAVINGS_1NODE:.2%} at 1 node, "
     f"{TABLE2_BLOSC_SAVINGS_200NODES:.2%} at 200 nodes."),
    ("table3_listing1", "Table III / Listing 1 — lfs striping", ""),
    ("postproc_restart_read", "Extension — restart-read benchmark",
     "Future work (§VI): parallel post-processing / restart reads."),
    ("backend_comparison", "Extension — openPMD backend comparison",
     "Why the paper picks ADIOS2 over parallel HDF5."),
    ("bp4_vs_bp5", "Extension — BP4 vs BP5",
     "The §II-A efficiency-vs-memory trade-off, measured."),
    ("weak_scaling", "Extension — weak scaling",
     "Fixed per-rank load; ideal is a flat per-node rate."),
    ("sensitivity", "Extension — calibration sensitivity",
     "Elasticity of each anchor to each tuning constant (±50%)."),
    ("ablation_fsync", "Ablation — fsync-per-buffer", ""),
    ("ablation_aggregation", "Ablation — aggregation level", ""),
    ("ablation_shuffle", "Ablation — byte shuffle", ""),
    ("ablation_stdio_buffer", "Ablation — stdio buffer size", ""),
)


def build_report(results_dir: str | Path) -> str:
    """Assemble the markdown report from archived experiment outputs."""
    results_dir = Path(results_dir)
    lines = [
        "# Reproduction report",
        "",
        "Regenerated evaluation of Williams et al., *Enabling "
        "High-Throughput Parallel I/O in PIC MC Simulations with openPMD "
        "and Darshan I/O Monitoring* (CLUSTER 2024), on the virtual "
        "cluster.  See EXPERIMENTS.md for the measured-vs-paper analysis.",
        "",
    ]
    missing = []
    for name, title, anchor in SECTIONS:
        path = results_dir / f"{name}.txt"
        lines.append(f"## {title}")
        lines.append("")
        if anchor:
            lines.append(f"*{anchor}*")
            lines.append("")
        if path.exists():
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            missing.append(name)
            lines.append("_not yet generated — run "
                         f"`pytest benchmarks/ --benchmark-only`_")
        lines.append("")
    if missing:
        lines.append(f"_missing sections: {', '.join(missing)}_")
    return "\n".join(lines)


def write_report(results_dir: str | Path) -> Path:
    """Build and save ``results/REPORT.md``; returns the path."""
    results_dir = Path(results_dir)
    out = results_dir / "REPORT.md"
    out.write_text(build_report(results_dir) + "\n")
    return out


def main() -> None:  # pragma: no cover
    import sys

    target = sys.argv[1] if len(sys.argv) > 1 else "results"
    print(f"wrote {write_report(target)}")


if __name__ == "__main__":  # pragma: no cover
    main()
