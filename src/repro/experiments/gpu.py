"""GPU/hybrid staging: host-staged vs GDS checkpoint drain throughput.

The write plane's Table-II scenario assumed the particle blocks start in
host memory.  On a hybrid partition they start in device HBM, and the
checkpoint path gains one more leg — device → pinned host staging →
aggregation funnel, or device → storage directly over GPUDirect
Storage.  This driver sweeps that leg at Table-II scale (200 nodes ×
128 ranks = 25 600 ranks) across staging mode × aggregator count ×
GPUs/node and asks where each mode wins:

* **few GPUs/node** — each device drains a large payload through many
  bounded staging turnarounds; the bounce buffer becomes the
  bottleneck and GDS's direct path wins despite its slower wire;
* **many GPUs/node** — per-device payloads shrink below the staging
  window, turnarounds stop mattering, and the faster host link beats
  the GDS wire.

The crossover point between those regimes is the artifact's headline
check (``results/gpu_staging.json``).  Points route through the cached
sweep executor; the machine is rebuilt inside the point function from
``gpus_per_node`` so every cell is a pure function of its parameters.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace

from repro.cluster.presets import dardel_gpu
from repro.experiments.common import resolve_machine, subset
from repro.experiments.sweep import sweep
from repro.gpu import HybridConfig
from repro.util.tables import Table
from repro.util.units import MiB, to_gib
from repro.workloads.runner import run_openpmd_scaled

#: staging modes swept (host bounce buffer vs GPUDirect Storage)
MODES = ("host", "gds")
#: aggregator counts (the Fig. 6 sweet spot and 4x beyond it)
AGGREGATORS = (400, 1600)
#: devices per node (1 = one big payload per device, 8 = many small)
GPUS_PER_NODE = (1, 4, 8)
#: Table-II scale: 200 nodes x 128 ranks = 25 600 ranks
NODES = 200
#: pinned bounce-buffer bound per device [MiB] (double-buffered)
STAGING_MIB = 2


def gpu_report(machine, nodes: int, mode: str, aggregators: int,
               gpus_per_node: int, staging_mib: int, engine_ext: str,
               seed: int, config=None) -> dict:
    """One hybrid scaled run; module-level so the sweep can memoise it.

    ``machine`` provides the device template (its first
    :class:`~repro.cluster.machine.GpuSpec`) and everything else; the
    node is rebuilt with ``gpus_per_node`` copies of that device.
    """
    m = resolve_machine(machine)
    if not m.node.gpus:
        raise ValueError(f"{m.name} is not a GPU machine preset")
    device = m.node.gpus[0]
    m = replace(m, node=replace(m.node, gpus=(device,) * gpus_per_node))
    result = run_openpmd_scaled(
        m, nodes, config=config, num_aggregators=aggregators,
        engine_ext=engine_ext, async_drain=True, seed=seed,
        hybrid=HybridConfig(mode=mode, staging_bytes=staging_mib * MiB))
    rep = dict(result.gpu_report)
    rep["makespan_s"] = float(result.comm.max_time())
    return rep


@dataclass
class GpuRow:
    """One (mode, aggregators, GPUs/node) cell."""

    mode: str
    aggregators: int
    gpus_per_node: int
    makespan_s: float
    staged_gib: float
    drain_seconds_max: float
    stall_seconds_max: float
    turnarounds: int
    #: aggregate staging throughput: all devices drain in parallel, the
    #: job waits for the longest pole, so total bytes / max leg seconds
    staging_gibps: float
    peak_staging_mib: float

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class GpuResult:
    """The hybrid staging sweep on one GPU machine."""

    machine: str
    nodes: int
    nranks: int
    staging_mib: int
    engine: str
    seed: int
    rows: list[GpuRow] = field(default_factory=list)
    checks: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def row(self, mode: str, aggregators: int,
            gpus_per_node: int) -> GpuRow | None:
        for r in self.rows:
            if (r.mode, r.aggregators, r.gpus_per_node) == (
                    mode, aggregators, gpus_per_node):
                return r
        return None

    def _check_cells(self) -> dict:
        """Acceptance checks over whichever cells were swept.

        * GDS beats host staging once the bounce buffer is the
          bottleneck (fewest GPUs/node: biggest per-device payload,
          most turnarounds);
        * host staging beats GDS once per-device payloads shrink under
          the staging window (most GPUs/node);
        * therefore a crossover GPUs/node exists between the two, and
          the artifact records the interval;
        * GDS never touches host staging memory (zero residency);
        * bounded host staging at the biggest payload actually stalls
          (the mechanism behind the GDS win is visible in the trace).
        """
        checks: dict = {}
        aggs = sorted({r.aggregators for r in self.rows})
        gs = sorted({r.gpus_per_node for r in self.rows})
        if not aggs or not gs:
            return checks
        a0 = aggs[0]

        def pair(g):
            return self.row("host", a0, g), self.row("gds", a0, g)

        host_lo, gds_lo = pair(gs[0])
        if host_lo is not None and gds_lo is not None:
            checks["gds_beats_host_staging_bound"] = {
                "pass": gds_lo.staging_gibps > host_lo.staging_gibps,
                "gpus_per_node": gs[0],
                "gds_gibps": gds_lo.staging_gibps,
                "host_gibps": host_lo.staging_gibps}
        host_hi, gds_hi = pair(gs[-1])
        if host_hi is not None and gds_hi is not None and len(gs) > 1:
            checks["host_beats_gds_many_gpus"] = {
                "pass": host_hi.staging_gibps > gds_hi.staging_gibps,
                "gpus_per_node": gs[-1],
                "gds_gibps": gds_hi.staging_gibps,
                "host_gibps": host_hi.staging_gibps}
        # crossover: the winner flips somewhere along the GPUs/node axis
        winners = []
        for g in gs:
            host, gds = pair(g)
            if host is not None and gds is not None:
                winners.append(
                    (g, "gds" if gds.staging_gibps > host.staging_gibps
                     else "host"))
        flip = None
        for (g_lo, w_lo), (g_hi, w_hi) in zip(winners, winners[1:]):
            if w_lo == "gds" and w_hi == "host":
                flip = (g_lo, g_hi)
                break
        checks["crossover"] = {
            "pass": flip is not None,
            "between_gpus_per_node": list(flip) if flip else None,
            "winners": {str(g): w for g, w in winners},
            "aggregators": a0}
        gds_rows = [r for r in self.rows if r.mode == "gds"]
        if gds_rows:
            checks["gds_zero_host_residency"] = {
                "pass": all(r.peak_staging_mib == 0.0 for r in gds_rows),
                "max_peak_mib": max(r.peak_staging_mib for r in gds_rows)}
        if host_lo is not None:
            checks["host_staging_stalls"] = {
                "pass": host_lo.stall_seconds_max > 0.0,
                "stall_seconds_max": host_lo.stall_seconds_max,
                "turnarounds": host_lo.turnarounds}
        return checks

    def to_artifact(self) -> dict:
        return {
            "experiment": "gpu",
            "machine": self.machine,
            "nodes": self.nodes,
            "nranks": self.nranks,
            "staging_mib": self.staging_mib,
            "engine": self.engine,
            "seed": self.seed,
            "checks": self.checks,
            "rows": [r.to_dict() for r in self.rows],
        }

    def save_artifact(self, path: str) -> str:
        d = os.path.dirname(path)
        if d:
            os.makedirs(d, exist_ok=True)
        with open(path, "w") as f:
            json.dump(self.to_artifact(), f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    def to_table(self) -> Table:
        t = Table(["mode", "aggr", "GPUs/node", "staged [GiB]",
                   "drain max [s]", "stall max [s]", "turns",
                   "staging [GiB/s]", "peak stage [MiB]", "makespan [s]"],
                  title=f"Hybrid staging on {self.machine} "
                        f"({self.nodes} nodes, {self.nranks} ranks, "
                        f"{self.staging_mib} MiB staging, {self.engine})")
        for r in self.rows:
            t.add_row([r.mode, r.aggregators, r.gpus_per_node,
                       f"{r.staged_gib:.2f}",
                       f"{r.drain_seconds_max:.4f}",
                       f"{r.stall_seconds_max:.4f}", r.turnarounds,
                       f"{r.staging_gibps:.1f}",
                       f"{r.peak_staging_mib:.1f}",
                       f"{r.makespan_s:.2f}"])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        for name, c in sorted(self.checks.items()):
            status = "pass" if c.get("pass") else "FAIL"
            detail = ", ".join(f"{k}={v:.3f}" if isinstance(v, float)
                               else f"{k}={v}" for k, v in c.items()
                               if k != "pass")
            out += f"\n  check {name}: {status} ({detail})"
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def run_gpu(machine=None, modes=MODES, aggregators=AGGREGATORS,
            gpus_per_node=GPUS_PER_NODE, nodes: int = NODES,
            staging_mib: int = STAGING_MIB, engine_ext: str = ".bp5",
            quick: bool = False, seed: int = 0, config=None,
            artifact_path: str | None = None) -> GpuResult:
    """Sweep staging mode × aggregators × GPUs/node at Table-II scale.

    ``quick`` shrinks the job to 20 nodes and one aggregator count but
    keeps the full GPUs/node axis — the crossover is a per-device
    property, so it survives the shrink and the smoke test still sees
    it.
    """
    machine = resolve_machine(machine) if machine is not None \
        else dardel_gpu()
    modes = tuple(modes)
    aggregators = subset(tuple(aggregators), quick)
    gpus_per_node = tuple(gpus_per_node)
    if quick:
        full = nodes
        nodes = min(nodes, 20)
        # fewer ranks share the same total particle count, so per-rank
        # (and per-device) payloads grow by the shrink factor; scale the
        # staging bound with them so the quick sweep crosses the same
        # bounded/unbounded regimes as the full-scale one
        staging_mib = staging_mib * max(1, full // nodes)

    points = [{"machine": machine, "nodes": nodes, "mode": mode,
               "aggregators": agg, "gpus_per_node": g,
               "staging_mib": staging_mib, "engine_ext": engine_ext,
               "seed": seed, "config": config}
              for mode in modes for agg in aggregators
              for g in gpus_per_node]
    reports = sweep(gpu_report, points)

    result = GpuResult(
        machine=machine.name, nodes=nodes,
        nranks=nodes * machine.cores_per_node,
        staging_mib=staging_mib, engine=engine_ext.strip("."), seed=seed)
    for point, rep in zip(points, reports):
        drain = rep["drain_seconds_max"]
        result.rows.append(GpuRow(
            mode=point["mode"], aggregators=point["aggregators"],
            gpus_per_node=point["gpus_per_node"],
            makespan_s=rep["makespan_s"],
            staged_gib=to_gib(rep["staged_bytes"]),
            drain_seconds_max=drain,
            stall_seconds_max=rep["stall_seconds_max"],
            turnarounds=rep["turnarounds"],
            staging_gibps=(to_gib(rep["staged_bytes"]) / drain
                           if drain > 0.0 else 0.0),
            peak_staging_mib=rep["peak_staging_bytes"] / MiB))

    result.checks = result._check_cells()
    failed = [k for k, c in result.checks.items() if not c.get("pass")]
    result.notes.append(
        f"{len(result.checks) - len(failed)}/{len(result.checks)} "
        f"acceptance checks pass"
        + (f"; failing: {failed}" if failed else ""))
    if artifact_path is not None:
        result.save_artifact(artifact_path)
        result.notes.append(f"artifact written to {artifact_path}")
    return result


def main() -> None:  # pragma: no cover
    print(run_gpu(artifact_path="results/gpu_staging.json").render())


if __name__ == "__main__":  # pragma: no cover
    main()
