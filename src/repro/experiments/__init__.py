"""Per-figure/table experiment drivers reproducing the paper's evaluation."""

from repro.experiments.agg_sweep import AggSweepResult, run_agg_sweep
from repro.experiments.common import ExperimentResult, SeriesResult
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.gpu import GpuResult, run_gpu
from repro.experiments.postproc import PostprocResult, run_postproc
from repro.experiments.resilience import (
    MultiLevelResult,
    ResilienceResult,
    run_resilience,
    run_resilience_multilevel,
)
from repro.experiments.sensitivity import SensitivityResult, run_sensitivity
from repro.experiments.serving import ServingResult, run_serving
from repro.experiments.streaming import StreamingResult, run_streaming
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.tuning import TuningExperimentResult, run_tuning
from repro.experiments.weak_scaling import run_weak_scaling

__all__ = [
    "AggSweepResult",
    "ExperimentResult",
    "Fig5Result",
    "PostprocResult",
    "MultiLevelResult",
    "ResilienceResult",
    "SensitivityResult",
    "Fig8Result",
    "Fig9Result",
    "GpuResult",
    "SeriesResult",
    "ServingResult",
    "StreamingResult",
    "Table2Result",
    "TuningExperimentResult",
    "run_agg_sweep",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_gpu",
    "run_postproc",
    "run_resilience",
    "run_resilience_multilevel",
    "run_sensitivity",
    "run_serving",
    "run_streaming",
    "run_table2",
    "run_tuning",
    "run_weak_scaling",
]
