"""BP4 vs BP5 aggregator-count × drain-mode sweep.

The paper tunes ``NumAggregators`` and lands on 400 subfiles for the
200-node runs — two aggregators per node (§IV).  This driver redoes that
tuning under both file engines and both drain modes:

* **BP4** aggregates in one level: every rank ships straight to its
  subfile owner, so more aggregators per node keeps shrinking each
  funnel and the shuffle cost falls monotonically;
* **BP5** aggregates in two levels (ranks → node-local shm leader →
  subfile owner over the NIC): the level-1 funnel is fixed per node, and
  every extra aggregator per node adds level-2 cross-node messages — the
  aggregation-phase optimum sits at *one* aggregator per node even when
  the write-throughput optimum does not move;
* **AsyncWrite** (BP5's drain mode, applied to either engine here)
  overlaps the subfile drain with the next steps' compute; it cannot
  change what Darshan sees per write, only the makespan.

Points route through the cached sweep executor like every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.presets import dardel
from repro.experiments.common import resolve_machine, subset
from repro.experiments.points import engine_report
from repro.experiments.sweep import sweep
from repro.util.tables import Table
from repro.util.units import to_gib
from repro.workloads.presets import paper_use_case

#: aggregators per node swept around the paper's optimum (2/node = 400
#: subfiles at 200 nodes)
AGGS_PER_NODE = (0.5, 1, 2, 4, 8)
#: both file engines of §III-D
ENGINES = (".bp4", ".bp5")
#: nominal PIC compute per step — the window async drains overlap
COMPUTE_SECONDS_PER_STEP = 0.02


@dataclass
class AggSweepRow:
    """One (engine, drain mode, aggregator count) cell."""

    engine: str
    async_drain: bool
    aggs_per_node: float
    num_aggregators: int
    gib: float
    makespan_s: float
    aggregation_s: float
    drain_wait_s: float
    peak_host_gib: float


@dataclass
class AggSweepResult:
    """The aggregator sweep on one machine at one scale."""

    machine: str
    nodes: int
    rows: list[AggSweepRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def _engine_rows(self, engine: str,
                     async_drain: bool = False) -> list[AggSweepRow]:
        return [r for r in self.rows
                if r.engine == engine and r.async_drain == async_drain]

    def throughput_optimum(self, engine: str) -> int:
        """``NumAggregators`` with the best write throughput (sync)."""
        rows = self._engine_rows(engine)
        return max(rows, key=lambda r: r.gib).num_aggregators

    def aggregation_optimum(self, engine: str) -> float:
        """Aggregators *per node* with the cheapest shuffle phase (sync)."""
        rows = self._engine_rows(engine)
        return min(rows, key=lambda r: r.aggregation_s).aggs_per_node

    def to_table(self) -> Table:
        t = Table(["engine", "drain", "aggs/node", "subfiles", "GiB/s",
                   "makespan [s]", "aggregation [s]", "drain wait [s]",
                   "peak host [GiB]"],
                  title=f"Aggregator sweep on {self.machine} "
                        f"({self.nodes} nodes)")
        for r in self.rows:
            t.add_row([r.engine.strip("."), "async" if r.async_drain
                       else "sync", f"{r.aggs_per_node:g}",
                       r.num_aggregators, f"{r.gib:.2f}",
                       f"{r.makespan_s:.1f}", f"{r.aggregation_s:.3f}",
                       f"{r.drain_wait_s:.2f}", f"{r.peak_host_gib:.3f}"])
        return t

    def render(self) -> str:
        out = self.to_table().render()
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def run_agg_sweep(machine=None, nodes: int | None = None,
                  aggs_per_node=AGGS_PER_NODE, engines=ENGINES,
                  quick: bool = False, seed: int = 0, config=None,
                  compute_seconds_per_step: float = COMPUTE_SECONDS_PER_STEP,
                  ) -> AggSweepResult:
    """Sweep aggregator counts × engines × drain modes at one scale."""
    machine = resolve_machine(machine) if machine is not None else dardel()
    if nodes is None:
        nodes = 4 if quick else 200
    aggs_per_node = subset(tuple(aggs_per_node), quick)
    if config is None:
        config = (paper_use_case().with_(last_step=4_000, dmpstep=2_000)
                  if quick else paper_use_case())

    points = []
    for ext in engines:
        for a in aggs_per_node:
            for drain in (False, True):
                points.append({
                    "machine": machine, "nodes": nodes, "config": config,
                    "num_aggregators": max(1, int(round(nodes * a))),
                    "engine_ext": ext, "async_drain": drain,
                    "compute_seconds_per_step": compute_seconds_per_step,
                    "seed": seed})
    reports = sweep(engine_report, points)

    result = AggSweepResult(machine=machine.name, nodes=nodes)
    for point, rep in zip(points, reports):
        result.rows.append(AggSweepRow(
            engine=point["engine_ext"], async_drain=point["async_drain"],
            aggs_per_node=point["num_aggregators"] / nodes,
            num_aggregators=point["num_aggregators"],
            gib=rep["gib"], makespan_s=rep["makespan"],
            aggregation_s=rep["aggregation_s"],
            drain_wait_s=rep["drain_wait_s"],
            peak_host_gib=to_gib(rep["peak_host_bytes"])))

    for ext in engines:
        result.notes.append(
            f"{ext.strip('.')}: best throughput at "
            f"{result.throughput_optimum(ext)} subfiles "
            f"({result.throughput_optimum(ext) / nodes:g}/node); cheapest "
            f"aggregation at {result.aggregation_optimum(ext):g}/node")
    sync_rows = {(r.engine, r.num_aggregators): r for r in result.rows
                 if not r.async_drain}
    gains = [(sync_rows[(r.engine, r.num_aggregators)].makespan_s
              - r.makespan_s)
             for r in result.rows if r.async_drain]
    if gains:
        result.notes.append(
            f"async drain saves up to {max(gains):.1f} s of makespan "
            f"({sum(g > 0 for g in gains)}/{len(gains)} cells improved)")
    return result


def main() -> None:  # pragma: no cover
    print(run_agg_sweep().render())


if __name__ == "__main__":  # pragma: no cover
    main()
