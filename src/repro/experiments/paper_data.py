"""The paper's reported numbers, transcribed for comparison.

Every experiment driver prints its measured values next to these, and
EXPERIMENTS.md records the deltas.  Values come from the text of
Williams et al. (CLUSTER 2024); figures without printed data points
contribute only their stated anchors.
"""

from __future__ import annotations

from repro.util.units import GiB, KiB, MiB

#: node counts used across the scaling studies (Table II's columns)
NODE_COUNTS = (1, 2, 5, 10, 20, 30, 40, 50, 100, 200)

#: ranks per node on all three machines (2× 64-core EPYC)
RANKS_PER_NODE = 128

# -- Fig. 2: original file I/O write throughput (GiB/s anchors) -------------

FIG2_ANCHORS = {
    "Discoverer": {1: 0.26, 200: 0.20},   # "declining by 23%"
    "Dardel": {1: 0.09, 200: 0.41},       # "increasing …"
    # Vega: "inconsistent performance, lacking clear scaling behavior"
}

# -- Fig. 3/4: openPMD + BP4 --------------------------------------------------

FIG3_BP4_START_GIB = 0.6        # "starting with a higher write throughput of 0.6"
FIG4_IOR_TASKS = 25600

# -- Fig. 5: average I/O cost per process on 200 nodes (seconds) -------------

FIG5_ORIGINAL = {"read": 0.20, "meta": 17.868, "write": 1.043}
FIG5_BP4 = {"read": 0.20, "meta": 0.014, "write": 0.009}
FIG5_META_REDUCTION = 0.9992    # "approximately 99.92%"
FIG5_WRITE_REDUCTION = 0.9914   # "around 99.14%"

# -- Fig. 6: aggregator sweep on 200 nodes (GiB/s) ----------------------------

FIG6_ANCHORS = {1: 0.59, 400: 15.80, 25600: 3.87}
FIG6_SWEEP = (1, 25, 50, 100, 200, 400, 800, 1600, 6400, 25600)
FIG6_PEAK_AGGREGATORS = 400     # "two aggregators per node"

# -- Fig. 7: Blosc + 1 aggregator ---------------------------------------------

FIG7_ORIGINAL_PEAK = {"nodes": 40, "gib_s": 0.54}
FIG7_CROSSOVER_RANGE = (10, 50)  # original overtakes compressed BP4 here

# -- Fig. 9: Lustre striping study ----------------------------------------------

FIG9_STRIPE_SIZES = tuple(int(s * MiB) for s in (1, 2, 4, 8, 16))
FIG9_STRIPE_COUNTS = (1, 2, 4, 8, 16, 32, 48)
FIG9_BEST_SECONDS = 0.0089
FIG9_4M_1TO2_DELTA = -0.04      # "decreases by approximately 4%"
FIG9_16M_1TO2_DELTA = +0.0787   # "increases by approximately 7.87%"

# -- Table II: file census ---------------------------------------------------------
# {config: {"files": {...}, "avg": {...}, "max": {...}}} keyed by node count

TABLE2 = {
    "original": {
        "files": {1: 262, 2: 518, 5: 1286, 10: 2566, 20: 5126, 30: 7686,
                  40: 10246, 50: 12806, 100: 25606, 200: 51206},
        "avg": {1: 1.9 * MiB, 2: 939 * KiB, 5: 381 * KiB, 10: 192 * KiB,
                20: 98 * KiB, 30: 67 * KiB, 40: 51 * KiB, 50: 41 * KiB,
                100: 22 * KiB, 200: 13 * KiB},
        "max": {1: 3.8 * MiB, 2: 1.9 * MiB, 5: 763 * KiB, 10: 383 * KiB,
                20: 194 * KiB, 30: 130 * KiB, 40: 98 * KiB, 50: 79 * KiB,
                100: 40 * KiB, 200: 25 * KiB},
    },
    "bp4_default": {
        "files": {1: 6, 2: 7, 5: 10, 10: 15, 20: 25, 30: 35, 40: 45,
                  50: 55, 100: 105, 200: 205},
        "avg": {1: 81 * MiB, 2: 70 * MiB, 5: 51 * MiB, 10: 37 * MiB,
                20: 25 * MiB, 30: 20 * MiB, 40: 17 * MiB, 50: 16 * MiB,
                100: 12 * MiB, 200: 9.4 * MiB},
        "max": {1: 476 * MiB, 2: 239 * MiB, 5: 97 * MiB, 10: 53 * MiB,
                20: 106 * MiB, 30: 158 * MiB, 40: 211 * MiB, 50: 263 * MiB,
                100: 526 * MiB, 200: 1.1 * GiB},
    },
    "bp4_1aggr": {
        "files": {n: 6 for n in NODE_COUNTS},
        "avg": {1: 81 * MiB, 2: 82 * MiB, 5: 86 * MiB, 10: 92 * MiB,
                20: 104 * MiB, 30: 116 * MiB, 40: 128 * MiB, 50: 140 * MiB,
                100: 202 * MiB, 200: 326 * MiB},
        "max": {1: 476 * MiB, 2: 478 * MiB, 5: 484 * MiB, 10: 493 * MiB,
                20: 511 * MiB, 30: 529 * MiB, 40: 548 * MiB, 50: 567 * MiB,
                100: 665 * MiB, 200: 1.1 * GiB},
    },
    "bp4_blosc_1aggr": {
        "files": {n: 6 for n in NODE_COUNTS},
        "avg": {1: 72 * MiB, 2: 73 * MiB, 5: 76 * MiB, 10: 83 * MiB,
                20: 95 * MiB, 30: 107 * MiB, 40: 119 * MiB, 50: 131 * MiB,
                100: 192 * MiB, 200: 314 * MiB},
        "max": {1: 422 * MiB, 2: 424 * MiB, 5: 429 * MiB, 10: 437 * MiB,
                20: 456 * MiB, 30: 473 * MiB, 40: 490 * MiB, 50: 506 * MiB,
                100: 590 * MiB, 200: 1.1 * GiB},
    },
}

#: Blosc's storage savings vs the uncompressed/bzip2 layout (§IV-D)
TABLE2_BLOSC_SAVINGS_1NODE = 0.1111   # "an 11.11% reduction"
TABLE2_BLOSC_SAVINGS_200NODES = 0.0368  # "a 3.68% reduction on large runs"

# -- Table III / Listing 1 ------------------------------------------------------------

TABLE3_COMMAND = "lfs setstripe -c 8 -S 16M io_openPMD"
LISTING1_STRIPE_SIZE = 16 * MiB
LISTING1_STRIPE_COUNT = 8
