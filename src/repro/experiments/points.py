"""Shared sweep points — the unit of work the experiment drivers cache.

Every figure boils down to evaluating the model at (machine, nodes,
adaptor options) and reading one metric off the run.  Defining the
evaluation as a handful of module-level *point functions* (picklable by
reference, parameters canonicalisable) lets all drivers route through
:func:`repro.experiments.sweep.sweep`, which parallelises cache misses
and memoises results on disk.

Each point returns the *full* report of its run (throughput, cost
split, file census, per-write time) rather than one metric, so a point
evaluated for Fig. 3 is a cache hit when Table II or Fig. 5 asks about
the same configuration — the drivers just read different fields.
"""

from __future__ import annotations

from repro.darshan.report import (
    avg_seconds_per_write,
    cost_split,
    file_stats_from_sizes,
    write_throughput_gib,
)
from repro.ior.benchmark import run_ior
from repro.ior.config import table1_file_per_proc, table1_shared
from repro.workloads.runner import run_openpmd_scaled, run_original_scaled


def _report(res) -> dict:
    """The metrics every driver might want from one scaled run."""
    return {
        "gib": write_throughput_gib(res.log),
        "split": cost_split(res.log),
        "files": file_stats_from_sizes(res.file_sizes()),
        "seconds_per_write": avg_seconds_per_write(res.log),
    }


def original_report(machine, nodes, config=None, seed=0) -> dict:
    """One original-I/O run (Figs. 2-5, 7, Table II, weak scaling)."""
    return _report(run_original_scaled(machine, nodes, config=config,
                                       seed=seed))


def openpmd_report(machine, nodes, config=None, num_aggregators=None,
                   compressor=None, stripe_count=None, stripe_size=None,
                   seed=0) -> dict:
    """One openPMD+BP4 run (Figs. 3-7, 9, Table II, weak scaling)."""
    return _report(run_openpmd_scaled(
        machine, nodes, config=config, num_aggregators=num_aggregators,
        compressor=compressor, stripe_count=stripe_count,
        stripe_size=stripe_size, seed=seed))


def openpmd_profile(machine, nodes, compressor=None, seed=0) -> dict:
    """One profiled openPMD run, metrics folded from its event stream.

    Separate from :func:`openpmd_report` because ``profiling=True`` and
    the summary trace session change what the run records (Fig. 8).
    """
    res = run_openpmd_scaled(machine, nodes, num_aggregators=1,
                             compressor=compressor, profiling=True,
                             seed=seed, trace_mode="summary")
    profile = res.trace.stream_profile
    return {
        "memcpy_us": profile.total_us("memcpy") / profile.nranks,
        "compress_us": profile.total_us("compress") / profile.nranks,
        "breakdown": res.trace.render_breakdown(),
    }


def ior_gib(machine, ntasks, file_per_proc, seed=0) -> float:
    """One Table I IOR reference run (Fig. 4), GiB/s."""
    config = (table1_file_per_proc(ntasks) if file_per_proc
              else table1_shared(ntasks))
    return run_ior(machine, config, seed=seed).write_gib_s
