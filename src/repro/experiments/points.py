"""Shared sweep points — the unit of work the experiment drivers cache.

Every figure boils down to evaluating the model at (machine, nodes,
adaptor options) and reading one metric off the run.  Defining the
evaluation as a handful of module-level *point functions* (picklable by
reference, parameters canonicalisable) lets all drivers route through
:func:`repro.experiments.sweep.sweep`, which parallelises cache misses
and memoises results on disk.

Each point returns the *full* report of its run (throughput, cost
split, file census, per-write time) rather than one metric, so a point
evaluated for Fig. 3 is a cache hit when Table II or Fig. 5 asks about
the same configuration — the drivers just read different fields.
"""

from __future__ import annotations

from repro.darshan.report import (
    avg_seconds_per_write,
    cost_split,
    file_stats_from_sizes,
    write_throughput_gib,
)
from repro.ior.benchmark import run_ior
from repro.ior.config import table1_file_per_proc, table1_shared
from repro.workloads.datamodel import Bit1DataModel
from repro.workloads.runner import run_openpmd_scaled, run_original_scaled


def _report(res) -> dict:
    """The metrics every driver might want from one scaled run."""
    return {
        "gib": write_throughput_gib(res.log),
        "split": cost_split(res.log),
        "files": file_stats_from_sizes(res.file_sizes()),
        "seconds_per_write": avg_seconds_per_write(res.log),
    }


def original_report(machine, nodes, config=None, seed=0) -> dict:
    """One original-I/O run (Figs. 2-5, 7, Table II, weak scaling)."""
    return _report(run_original_scaled(machine, nodes, config=config,
                                       seed=seed))


def openpmd_report(machine, nodes, config=None, num_aggregators=None,
                   compressor=None, stripe_count=None, stripe_size=None,
                   seed=0) -> dict:
    """One openPMD+BP4 run (Figs. 3-7, 9, Table II, weak scaling)."""
    return _report(run_openpmd_scaled(
        machine, nodes, config=config, num_aggregators=num_aggregators,
        compressor=compressor, stripe_count=stripe_count,
        stripe_size=stripe_size, seed=seed))


def engine_report(machine, nodes, config=None, num_aggregators=None,
                  engine_ext=".bp4", async_drain=False,
                  host_memory_bound=None, compute_seconds_per_step=0.0,
                  seed=0) -> dict:
    """One engine-comparison run (the BP4-vs-BP5 aggregator sweep).

    On top of :func:`_report`'s metrics this exposes the makespan, the
    folded aggregation-phase cost (where one-level and two-level shuffles
    diverge) and the async-drain accounting.
    """
    res = run_openpmd_scaled(
        machine, nodes, config=config, num_aggregators=num_aggregators,
        engine_ext=engine_ext, async_drain=async_drain,
        host_memory_bound=host_memory_bound,
        compute_seconds_per_step=compute_seconds_per_step, seed=seed)
    out = _report(res)
    out.update(
        makespan=res.comm.max_time(),
        aggregation_s=sum(p.total_us("aggregation") for p in res.profiles)
        / 1e6,
        peak_host_bytes=res.peak_host_bytes,
        drain_wait_s=res.drain_wait_seconds,
        drain_s=res.drain_seconds,
    )
    return out


def tuning_report(machine, nodes, config=None, engine_ext=".bp4",
                  aggs_per_node=1.0, stripe_count=None, stripe_size=None,
                  compressor=None, async_drain=False, queue_depth=2,
                  ranks_per_node=128, compute_seconds_per_step=0.0,
                  seed=0) -> dict:
    """One joint-configuration probe of the I/O autotuner.

    The tuner's whole search space in one point function: engine ×
    aggregators-per-node × Lustre striping × compression × drain mode ×
    queue depth.  ``aggs_per_node`` (not an absolute aggregator count)
    keeps candidates comparable across node counts; ``queue_depth`` is
    the number of per-step staging buffers each aggregator may hold
    while async-draining — it maps onto the engine's
    ``host_memory_bound`` (BP5 ``MaxShmSize``) as ``depth × the
    aggregator's per-step diagnostic volume`` and is inert when
    ``async_drain`` is off.
    """
    if config is None:
        from repro.workloads.presets import paper_use_case
        config = paper_use_case()
    num_aggregators = max(1, int(round(nodes * aggs_per_node)))
    host_memory_bound = None
    if async_drain:
        model = Bit1DataModel(config, nodes * ranks_per_node)
        step_bytes = (model.diag_bytes_per_rank_per_event()
                      * nodes * ranks_per_node / num_aggregators)
        host_memory_bound = max(int(queue_depth * step_bytes), 1 << 20)
    res = run_openpmd_scaled(
        machine, nodes, config=config, ranks_per_node=ranks_per_node,
        num_aggregators=num_aggregators, compressor=compressor,
        stripe_count=stripe_count, stripe_size=stripe_size,
        engine_ext=engine_ext, async_drain=async_drain,
        host_memory_bound=host_memory_bound,
        compute_seconds_per_step=compute_seconds_per_step, seed=seed)
    out = _report(res)
    out.update(
        makespan=res.comm.max_time(),
        aggregation_s=sum(p.total_us("aggregation") for p in res.profiles)
        / 1e6,
        peak_host_bytes=res.peak_host_bytes,
        drain_wait_s=res.drain_wait_seconds,
        host_memory_bound=host_memory_bound,
    )
    return out


def openpmd_profile(machine, nodes, compressor=None, seed=0) -> dict:
    """One profiled openPMD run, metrics folded from its event stream.

    Separate from :func:`openpmd_report` because ``profiling=True`` and
    the summary trace session change what the run records (Fig. 8).
    """
    res = run_openpmd_scaled(machine, nodes, num_aggregators=1,
                             compressor=compressor, profiling=True,
                             seed=seed, trace_mode="summary")
    profile = res.trace.stream_profile
    return {
        "memcpy_us": profile.total_us("memcpy") / profile.nranks,
        "compress_us": profile.total_us("compress") / profile.nranks,
        "breakdown": res.trace.render_breakdown(),
    }


def streaming_report(machine, nodes, config=None, queue_depth=4,
                     policy="block", compute_seconds_per_step=0.0,
                     seed=0) -> dict:
    """One in-situ streaming run (the repro.streaming experiment)."""
    from repro.streaming import run_streaming_scaled

    res = run_streaming_scaled(
        machine, nodes, config=config, queue_depth=queue_depth,
        policy=policy, compute_seconds_per_step=compute_seconds_per_step,
        seed=seed)
    return {
        "makespan": res.makespan,
        "producer_seconds": res.producer_seconds,
        "ttfi": res.time_to_first_insight,
        "peak_staging_bytes": res.peak_staging_bytes,
        "stalls": res.stalls,
        "stall_seconds": res.stall_seconds,
        "dropped": res.dropped,
        "published": res.published,
        "stored_bytes": res.stored_bytes,
        "storage_bytes_avoided": res.storage_bytes_avoided,
    }


def posthoc_report(machine, nodes, config=None,
                   compute_seconds_per_step=0.0, analysis_rate=None,
                   seed=0) -> dict:
    """One file-based run + modelled post-hoc read/analyse pass.

    The streaming experiment's baseline: the same job writes its output
    through openPMD+BP4, then a post-processing pass re-reads the series
    (read parallelism bounded by the subfile count, as in
    :mod:`repro.experiments.postproc`) and runs the same reductions at
    the same analysis rate.  First insight only exists once the run has
    finished *and* the first snapshot has been read back.
    """
    from repro.streaming.consumers import ANALYSIS_RATE

    if analysis_rate is None:
        analysis_rate = ANALYSIS_RATE
    res = run_openpmd_scaled(machine, nodes, config=config, seed=seed)
    cfg = config
    model = Bit1DataModel(cfg, res.nranks)
    compute_total = compute_seconds_per_step * cfg.last_step
    job_makespan = res.comm.max_time() + compute_total
    # restart-read mechanics: streams bounded by the written subfiles
    # (diag: one per node, ckpt: one) and the reader count
    read_rate = float(res.fs.perf.aggregate_write_rate(
        min(nodes + 1, 128), 1))
    total_bytes = model.openpmd_ondisk_bytes()
    first_bytes = res.nranks * model.diag_bytes_per_rank_per_event()
    read_all = total_bytes / read_rate
    analyze_all = total_bytes / analysis_rate
    return {
        "write_wall": res.comm.max_time(),
        "job_makespan": job_makespan,
        "ttfi": job_makespan + first_bytes / read_rate
        + first_bytes / analysis_rate,
        "makespan": job_makespan + read_all + analyze_all,
        "storage_bytes": total_bytes,
        "gib": write_throughput_gib(res.log),
    }


def ior_gib(machine, ntasks, file_per_proc, seed=0) -> float:
    """One Table I IOR reference run (Fig. 4), GiB/s."""
    config = (table1_file_per_proc(ntasks) if file_per_proc
              else table1_shared(ntasks))
    return run_ior(machine, config, seed=seed).write_gib_s
