"""Calibration sensitivity analysis.

The storage model's constants were calibrated against the paper's
anchors (docs/performance_model.md).  A fair question is how fragile
that calibration is: would the figures change qualitatively if a
constant were off by 2×?  This driver perturbs one tuning constant at a
time and re-measures the key anchors, reporting elasticities

    e = (Δanchor / anchor) / (Δconstant / constant)

Small |e| means the anchor is insensitive (the constant is not doing the
work); |e| ≈ 1 means proportional response; the *shape* checks (peak
location, crossover existence) are reported separately and should
survive every perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.presets import dardel
from repro.experiments.common import resolve_machine
from repro.experiments.points import openpmd_report, original_report
from repro.experiments.sweep import sweep
from repro.util.tables import Table

#: the tuning constants worth perturbing, with the anchor each one
#: primarily drives
DEFAULT_CONSTANTS = (
    "sync_latency",            # Fig. 2/5: original metadata mountain
    "sync_gamma",              # Fig. 2 shape (rise/decline)
    "client_stream_bandwidth", # Fig. 6 single-aggregator point
    "agg_beta",                # Fig. 6 rise
    "interleave_gamma",        # Fig. 6 decline / 25600 point
    "ost_stream_bandwidth",    # Fig. 6 peak height
    "mds_gamma",               # metadata op costs
)


@dataclass
class Anchors:
    """The anchor set re-measured under each perturbation."""

    orig_tput_200: float
    orig_meta_200: float
    bp4_tput_1aggr: float
    bp4_tput_400aggr: float
    bp4_tput_25600aggr: float

    def as_dict(self) -> dict[str, float]:
        return {
            "orig tput @200": self.orig_tput_200,
            "orig meta s @200": self.orig_meta_200,
            "BP4 @1 aggr": self.bp4_tput_1aggr,
            "BP4 @400 aggr": self.bp4_tput_400aggr,
            "BP4 @25600 aggr": self.bp4_tput_25600aggr,
        }


@dataclass
class SensitivityResult:
    """Elasticities of every anchor w.r.t. every perturbed constant."""

    machine: str
    nodes: int
    scale: float
    baseline: Anchors
    #: constant name -> {anchor name -> elasticity}
    elasticities: dict[str, dict[str, float]] = field(default_factory=dict)
    #: constant name -> peak still interior (shape survives)?
    shape_survives: dict[str, bool] = field(default_factory=dict)

    def to_table(self) -> Table:
        anchor_names = list(self.baseline.as_dict())
        t = Table(["constant", *anchor_names, "peak interior"],
                  title=f"Calibration sensitivity on {self.machine} "
                        f"({self.nodes} nodes, ±{(self.scale - 1):.0%})")
        for const, es in self.elasticities.items():
            t.add_row([const,
                       *[f"{es[a]:+.2f}" for a in anchor_names],
                       "yes" if self.shape_survives[const] else "NO"])
        return t

    def render(self) -> str:
        return self.to_table().render()


def _measure_all(machines, nodes: int, seed: int) -> list[Anchors]:
    """The anchor set of every machine, as two flattened sweeps."""
    aggr_counts = (1, min(400, nodes * 128), nodes * 128)
    origs = sweep(original_report,
                  [{"machine": m, "nodes": nodes, "seed": seed}
                   for m in machines])
    bp4s = sweep(openpmd_report,
                 [{"machine": m, "nodes": nodes, "num_aggregators": a,
                   "seed": seed} for m in machines for a in aggr_counts])
    out = []
    for i, orig in enumerate(origs):
        three = bp4s[3 * i:3 * i + 3]
        out.append(Anchors(
            orig_tput_200=orig["gib"],
            orig_meta_200=orig["split"].meta_seconds,
            bp4_tput_1aggr=three[0]["gib"],
            bp4_tput_400aggr=three[1]["gib"],
            bp4_tput_25600aggr=three[2]["gib"],
        ))
    return out


def run_sensitivity(constants=DEFAULT_CONSTANTS, nodes: int = 200,
                    scale: float = 1.5, machine=None,
                    seed: int = 0) -> SensitivityResult:
    """Perturb each constant by ``scale`` and measure anchor elasticity."""
    if scale <= 0 or scale == 1.0:
        raise ValueError("scale must be positive and != 1")
    base_machine = resolve_machine(machine) if machine is not None else dardel()
    storage_name = base_machine.default_storage.name
    tuning = base_machine.default_storage.tuning
    perturbed_machines = [
        base_machine.with_storage_tuning(
            storage_name, **{const: getattr(tuning, const) * scale})
        for const in constants
    ]
    baseline, *perturbed_anchors = _measure_all(
        [base_machine, *perturbed_machines], nodes, seed)
    base_vals = baseline.as_dict()
    result = SensitivityResult(machine=base_machine.name, nodes=nodes,
                               scale=scale, baseline=baseline)
    rel_change = scale - 1.0
    for const, measured in zip(constants, perturbed_anchors):
        per = {}
        for name, value in measured.as_dict().items():
            base = base_vals[name]
            per[name] = ((value - base) / base) / rel_change if base else 0.0
        result.elasticities[const] = per
        # shape check: the aggregator curve must still peak interior
        result.shape_survives[const] = (
            measured.bp4_tput_400aggr > measured.bp4_tput_1aggr
            and measured.bp4_tput_400aggr > measured.bp4_tput_25600aggr
        )
    return result


def main() -> None:  # pragma: no cover
    print(run_sensitivity(nodes=50).render())


if __name__ == "__main__":  # pragma: no cover
    main()
