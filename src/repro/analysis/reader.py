"""Structured loading of BIT1's openPMD output — the consumer side.

The paper's §I motivation: parallel I/O "enable[s] the post-processing
of critical information".  This module is that post-processing entry
point: given a BIT1 openPMD series (the ``*_dat.bp4`` / ``*_dmp.bp4``
pair the adaptor writes), it reconstructs typed views — phase-space
snapshots, density profiles, distribution functions — for analysis code
that knows nothing about engines or chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.io_adaptor.naming import SPECIES_NAMES
from repro.openpmd.series import Access, Series


@dataclass(frozen=True)
class PhaseSpace:
    """One species' particle arrays from a checkpoint."""

    species: str
    x: np.ndarray
    vx: np.ndarray
    vy: np.ndarray
    vz: np.ndarray
    weight: np.ndarray

    def __len__(self) -> int:
        return len(self.x)

    def kinetic_energy(self, mass: float) -> float:
        return float(0.5 * mass * np.sum(
            self.weight * (self.vx**2 + self.vy**2 + self.vz**2)))


@dataclass
class DiagnosticsFrame:
    """One diagnostic iteration: profiles + distribution functions."""

    iteration: int
    densities: dict[str, np.ndarray] = field(default_factory=dict)
    dfv: dict[str, np.ndarray] = field(default_factory=dict)
    dfe: dict[str, np.ndarray] = field(default_factory=dict)
    dfa: dict[str, np.ndarray] = field(default_factory=dict)


class Bit1SeriesReader:
    """Typed reader over the adaptor's output layout."""

    def __init__(self, posix, comm, outdir: str, prefix: str = "bit1",
                 engine_ext: str = ".bp4"):
        self._posix = posix
        self._comm = comm
        self._outdir = outdir
        self._prefix = prefix
        self._engine_ext = engine_ext
        self._open_series()

    def _open_series(self) -> None:
        outdir, prefix, ext = (self._outdir.rstrip("/"), self._prefix,
                               self._engine_ext)
        self.diag = Series(self._posix, self._comm,
                           f"{outdir}/{prefix}_dat{ext}", Access.READ_ONLY)
        self.ckpt = Series(self._posix, self._comm,
                           f"{outdir}/{prefix}_dmp{ext}", Access.READ_ONLY)
        # per-session metadata caches: a read-only series is immutable,
        # so iteration scans happen once per open, not per accessor call
        self._diag_iterations: list[int] | None = None
        self._ckpt_latest: int | None = None

    def reopen(self) -> "Bit1SeriesReader":
        """Re-open both series, invalidating the metadata caches.

        Call this when the on-disk series may have grown (a still-running
        job appended iterations) — the per-session caches assume the
        series is immutable while open.
        """
        self._open_series()
        return self

    # -- checkpoints -----------------------------------------------------------

    def _latest_checkpoint(self) -> int:
        """Newest iteration present in the checkpoint (``_dmp``) series.

        BIT1 usually rewrites iteration 0 in place, but restart-file
        (file-based) layouts and future multi-slot checkpoints carry
        several iterations — always read the newest one instead of
        hardcoding 0.  Cached per session (see :meth:`reopen`).
        """
        if self._ckpt_latest is None:
            self._ckpt_latest = max(self.ckpt.read_iterations(), default=0)
        return self._ckpt_latest

    def phase_space(self, bit1_species: str) -> PhaseSpace:
        """The latest checkpointed phase space of one species."""
        sp = SPECIES_NAMES.get(bit1_species, bit1_species)
        it = self._latest_checkpoint()
        return PhaseSpace(
            species=bit1_species,
            x=self.ckpt.load_particles(it, sp, "position", "x"),
            vx=self.ckpt.load_particles(it, sp, "momentum", "x"),
            vy=self.ckpt.load_particles(it, sp, "momentum", "y"),
            vz=self.ckpt.load_particles(it, sp, "momentum", "z"),
            weight=self.ckpt.load_particles(it, sp, "weighting"),
        )

    def checkpoint_step(self) -> int:
        """The step the latest checkpoint was taken at (if recorded)."""
        it = self._latest_checkpoint()
        value = self.ckpt.attribute(f"/data/{it}/checkpointStep")
        return int(value) if value is not None else 0

    # -- diagnostics --------------------------------------------------------------

    def iterations(self) -> list[int]:
        if self._diag_iterations is None:
            self._diag_iterations = self.diag.read_iterations()
        return list(self._diag_iterations)

    def frame(self, iteration: int) -> DiagnosticsFrame:
        """All per-species diagnostics of one snapshot."""
        out = DiagnosticsFrame(iteration=iteration)
        for bit1_name, sp in SPECIES_NAMES.items():
            for target, kind in ((out.densities, "density"),
                                 (out.dfv, "dfv"), (out.dfe, "dfe"),
                                 (out.dfa, "dfa")):
                try:
                    target[bit1_name] = self.diag.load_mesh(
                        iteration, f"{sp}_{kind}")
                except KeyError:
                    continue
        return out

    def density_history(self, bit1_species: str) -> tuple[np.ndarray, np.ndarray]:
        """(iterations, total inventory) integrated from density profiles."""
        sp = SPECIES_NAMES.get(bit1_species, bit1_species)
        its = self.iterations()
        totals = []
        kept = []
        for it in its:
            try:
                profile = self.diag.load_mesh(it, f"{sp}_density")
            except KeyError:
                continue
            kept.append(it)
            if len(profile) < 2:
                # degenerate grid: no interior/end distinction, the
                # trapezoid end-weights would halve a single node
                totals.append(float(profile.sum()))
                continue
            # trapezoid over nodes: interior nodes weight dx, ends dx/2
            w = np.ones(len(profile))
            w[0] = w[-1] = 0.5
            totals.append(float((profile * w).sum()))
        return (np.asarray(kept, dtype=np.int64),
                np.asarray(totals, dtype=np.float64))
