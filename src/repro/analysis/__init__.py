"""Post-processing analysis of BIT1 output (the consumer the paper's
parallel I/O exists to serve)."""

from repro.analysis.moments import (
    MomentProfiles,
    compute_moments,
    debye_profile,
    moments_from_particles,
    pressure_profile,
)
from repro.analysis.reader import Bit1SeriesReader, DiagnosticsFrame, PhaseSpace
from repro.analysis.timeseries import (
    ExponentialFit,
    detect_steady_state,
    fit_exponential,
    ionization_rate_from_history,
    moving_average,
)

__all__ = [
    "Bit1SeriesReader",
    "DiagnosticsFrame",
    "ExponentialFit",
    "MomentProfiles",
    "PhaseSpace",
    "compute_moments",
    "debye_profile",
    "detect_steady_state",
    "fit_exponential",
    "ionization_rate_from_history",
    "moments_from_particles",
    "moving_average",
    "pressure_profile",
]
