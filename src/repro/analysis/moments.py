"""Velocity-moment analysis of particle data.

What a plasma physicist computes from BIT1's phase-space output: the
density, mean-velocity and temperature profiles (0th/1st/2nd velocity
moments) on the grid, from either a live :class:`~repro.pic.species.
ParticleArrays` or arrays read back through openPMD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pic.constants import EV
from repro.pic.grid import Grid1D


@dataclass(frozen=True)
class MomentProfiles:
    """Per-node moment profiles for one species."""

    density: np.ndarray          # [m^-3]
    mean_velocity: np.ndarray    # vx drift [m/s]
    temperature_ev: np.ndarray   # isotropic T [eV]

    @property
    def nnodes(self) -> int:
        return len(self.density)


def compute_moments(grid: Grid1D, x: np.ndarray, vx: np.ndarray,
                    vy: np.ndarray, vz: np.ndarray,
                    weight: np.ndarray, mass: float) -> MomentProfiles:
    """CIC-weighted moments of a particle population on grid nodes.

    Empty nodes get zero density, zero drift and zero temperature (no
    NaNs), so profiles remain plottable near evacuated regions.
    """
    x = np.asarray(x, dtype=np.float64)
    if not (len(x) == len(vx) == len(vy) == len(vz) == len(weight)):
        raise ValueError("phase-space arrays must share a length")
    nnodes = grid.nnodes
    w0 = np.zeros(nnodes)        # Σ w
    w1 = np.zeros(nnodes)        # Σ w vx
    w2 = np.zeros(nnodes)        # Σ w |v|²
    if len(x):
        xi = np.clip(x / grid.dx, 0.0, grid.ncells - 1e-12)
        left = np.floor(xi).astype(np.int64)
        frac = xi - left
        v2 = np.asarray(vx) ** 2 + np.asarray(vy) ** 2 + np.asarray(vz) ** 2
        for target, values in ((w0, weight),
                               (w1, weight * np.asarray(vx)),
                               (w2, weight * v2)):
            np.add.at(target, left, values * (1.0 - frac))
            np.add.at(target, left + 1, values * frac)
    volume = np.full(nnodes, grid.dx)
    volume[0] = volume[-1] = grid.dx / 2.0
    density = w0 / volume
    occupied = w0 > 0
    mean_v = np.zeros(nnodes)
    mean_v[occupied] = w1[occupied] / w0[occupied]
    # T from the full 3V spread around the (vx-only) drift:
    # <|v|²> − u², divided by 3 degrees of freedom
    t_ev = np.zeros(nnodes)
    spread = np.zeros(nnodes)
    spread[occupied] = w2[occupied] / w0[occupied] - mean_v[occupied] ** 2
    t_ev[occupied] = np.maximum(spread[occupied], 0.0) * mass / (3.0 * EV)
    return MomentProfiles(density=density, mean_velocity=mean_v,
                          temperature_ev=t_ev)


def moments_from_particles(grid: Grid1D, particles) -> MomentProfiles:
    """Moments of a live :class:`ParticleArrays`."""
    n = len(particles)
    return compute_moments(
        grid,
        particles.x[:n], particles.vx[:n], particles.vy[:n],
        particles.vz[:n], particles.weight[:n], particles.mass,
    )


def pressure_profile(moments: MomentProfiles) -> np.ndarray:
    """Scalar pressure p = n k T  [Pa] (with T supplied in eV)."""
    return moments.density * moments.temperature_ev * EV


def debye_profile(moments: MomentProfiles) -> np.ndarray:
    """Local electron Debye length per node (inf where density is 0)."""
    from repro.pic.constants import EPS0, QE

    out = np.full(moments.nnodes, np.inf)
    occ = (moments.density > 0) & (moments.temperature_ev > 0)
    out[occ] = np.sqrt(EPS0 * moments.temperature_ev[occ] * EV
                       / (moments.density[occ] * QE * QE))
    return out
