"""Time-series analysis of BIT1 diagnostics.

Tools for the quantities the paper's use case produces over time: the
neutral-inventory decay (∂n/∂t = −n·n_e·R), steady-state detection for
the histories BIT1 logs, and generic exponential fitting used by the
in-situ example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ExponentialFit:
    """y(t) ≈ amplitude · exp(rate · t)."""

    rate: float
    amplitude: float
    r_squared: float

    def __call__(self, t: np.ndarray) -> np.ndarray:
        return self.amplitude * np.exp(self.rate * np.asarray(t))

    @property
    def halving_time(self) -> float:
        """Time to halve (for decays; inf if not decaying)."""
        if self.rate >= 0:
            return float("inf")
        return float(np.log(2.0) / -self.rate)


def fit_exponential(times: np.ndarray, values: np.ndarray) -> ExponentialFit:
    """Least-squares fit in log space (values must be positive)."""
    t = np.asarray(times, dtype=np.float64)
    y = np.asarray(values, dtype=np.float64)
    if len(t) != len(y):
        raise ValueError("times and values must share a length")
    if len(t) < 2:
        raise ValueError("need at least two samples to fit")
    if np.any(y <= 0):
        raise ValueError("exponential fit requires positive values")
    logy = np.log(y)
    slope, intercept = np.polyfit(t, logy, 1)
    predicted = slope * t + intercept
    ss_res = float(np.sum((logy - predicted) ** 2))
    ss_tot = float(np.sum((logy - logy.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ExponentialFit(rate=float(slope),
                          amplitude=float(np.exp(intercept)),
                          r_squared=r2)


def ionization_rate_from_history(steps: np.ndarray, counts: np.ndarray,
                                 dt: float) -> float:
    """Recover n_e·R from a neutral-count history (the use case's law).

    Returns the decay constant λ in n(t) = n₀·exp(−λ t), which the
    physics sets to n_e·R.
    """
    fit = fit_exponential(np.asarray(steps) * dt, counts)
    return -fit.rate


def detect_steady_state(values: np.ndarray, window: int = 20,
                        rel_tol: float = 0.01) -> int | None:
    """First index at which a trailing window is flat within rel_tol.

    Returns None if the series never settles.  Used on wall-flux and
    particle-count histories to decide when a sheath run has converged.
    """
    v = np.asarray(values, dtype=np.float64)
    if window < 2:
        raise ValueError("window must be >= 2")
    for i in range(window, len(v) + 1):
        chunk = v[i - window:i]
        mean = chunk.mean()
        if mean == 0:
            if np.all(chunk == 0):
                return i - window
            continue
        if (chunk.max() - chunk.min()) / abs(mean) <= rel_tol:
            return i - window
    return None


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Simple trailing moving average (same length; warm-up truncated)."""
    v = np.asarray(values, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    if window == 1 or len(v) == 0:
        return v.copy()
    kernel = np.ones(min(window, len(v))) / min(window, len(v))
    full = np.convolve(v, kernel, mode="valid")
    pad = np.array([v[: i + 1].mean() for i in range(min(window, len(v)) - 1)])
    return np.concatenate([pad, full])
