"""ADIOS2 data-model primitives: variables, attributes, chunk descriptors.

ADIOS2's unified API "emphasizes n-dimensional variables, attributes and
steps" (§II-A).  A :class:`Variable` describes a named n-D array with a
global shape; each rank contributes a chunk (offset + local extent +
payload).  These descriptors flow from the openPMD layer down to the
engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.fs.payload import Payload, RealPayload, SyntheticPayload, as_payload

#: ADIOS2 datatype names for the numpy dtypes BIT1 uses
DTYPE_NAMES = {
    "float32": "float",
    "float64": "double",
    "int32": "int32_t",
    "int64": "int64_t",
    "uint64": "uint64_t",
    "uint8": "uint8_t",
}


def dtype_name(dtype: np.dtype | str) -> str:
    """ADIOS2 name for a numpy dtype."""
    key = np.dtype(dtype).name
    if key not in DTYPE_NAMES:
        raise TypeError(f"unsupported ADIOS2 datatype: {dtype!r}")
    return DTYPE_NAMES[key]


@dataclass(frozen=True)
class Attribute:
    """A named scalar/string attribute attached to the output."""

    name: str
    value: Any

    def nbytes(self) -> int:
        if isinstance(self.value, str):
            return len(self.value.encode())
        if isinstance(self.value, (list, tuple)):
            return 8 * len(self.value)
        return 8


@dataclass
class Chunk:
    """One rank's contribution to a variable in one step."""

    rank: int
    offset: tuple[int, ...]
    extent: tuple[int, ...]
    payload: Payload

    @property
    def nbytes(self) -> int:
        return self.payload.nbytes


@dataclass
class Variable:
    """A named n-D variable within a step."""

    name: str
    dtype: str
    global_shape: tuple[int, ...]
    chunks: list[Chunk] = field(default_factory=list)
    #: entropy class for synthetic accounting
    entropy: str = "particle_float32"

    def put_chunk(self, rank: int, offset: tuple[int, ...],
                  extent: tuple[int, ...],
                  data: Payload | bytes | np.ndarray) -> Chunk:
        """Attach one rank's chunk (openPMD ``storeChunk``)."""
        payload = as_payload(data, entropy=self.entropy)
        if len(offset) != len(self.global_shape) or len(extent) != len(offset):
            raise ValueError(
                f"chunk rank mismatch for {self.name!r}: global shape "
                f"{self.global_shape}, offset {offset}, extent {extent}"
            )
        for o, e, g in zip(offset, extent, self.global_shape):
            if o < 0 or e < 0 or o + e > g:
                raise ValueError(
                    f"chunk [{offset}, {extent}] outside global shape "
                    f"{self.global_shape} of {self.name!r}"
                )
        chunk = Chunk(rank=rank, offset=offset, extent=extent, payload=payload)
        self.chunks.append(chunk)
        return chunk

    @property
    def total_bytes(self) -> int:
        return sum(c.nbytes for c in self.chunks)

    def per_rank_bytes(self, nranks: int) -> np.ndarray:
        """Bytes staged per rank for this variable."""
        out = np.zeros(nranks, dtype=np.int64)
        for c in self.chunks:
            out[c.rank] += c.nbytes
        return out


def element_size(dtype: str) -> int:
    """Bytes per element for an ADIOS2 datatype name."""
    table = {"float": 4, "double": 8, "int32_t": 4, "int64_t": 8,
             "uint64_t": 8, "uint8_t": 1}
    if dtype not in table:
        raise TypeError(f"unknown ADIOS2 datatype name {dtype!r}")
    return table[dtype]
