"""The Sustainable Staging Transport (SST) engine — streaming, no files.

The paper's future work (§VI): "The ADIOS2 SST engine enables the direct
connection of data producers and consumers via the ADIOS2 write/read
APIs, facilitating the movement of data between processes for in-situ
processing, analysis, and visualization."

This implementation provides exactly that for the virtual cluster: a
writer-side engine with the BP step API whose steps never touch the
filesystem — each ``end_step`` publishes the step to an in-memory stream
that one or more :class:`SSTReader` consumers drain, paying network
(not storage) costs.  Consumers attach by stream name, as SST consumers
attach via the engine's contact file.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.adios2.engine import EngineConfig
from repro.adios2.profiling import EngineProfile
from repro.adios2.variables import Variable
from repro.fs.payload import Payload, RealPayload, SyntheticPayload
from repro.mpi.comm import VirtualComm
from repro.trace.subscribers import ProfileFold

#: the "contact file" registry: stream name -> live stream
_STREAMS: dict[str, "_Stream"] = {}


@dataclass
class StepData:
    """One published step: variable name → assembled payload info."""

    step: int
    variables: dict[str, dict] = field(default_factory=dict)
    total_bytes: int = 0


@dataclass
class _Stream:
    """Shared state between one producer and its consumers."""

    name: str
    queue_depth: int
    steps: deque = field(default_factory=deque)
    published: int = 0
    closed: bool = False
    dropped: int = 0


def open_streams() -> list[str]:
    """Names of currently-advertised SST streams (debug/monitoring)."""
    return sorted(name for name, s in _STREAMS.items() if not s.closed)


class SSTEngine:
    """Writer side of the staging transport."""

    engine_type = "SST"
    extension = ".sst"

    def __init__(self, posix, comm: VirtualComm, path: str,
                 mode: str = "w", config: EngineConfig | None = None,
                 queue_depth: int = 2):
        if mode != "w":
            raise ValueError("SSTEngine is write-side; use SSTReader to read")
        self.posix = posix  # unused for data; kept for protocol parity
        self.comm = comm
        self.config = config or EngineConfig()
        name = path.rsplit("/", 1)[-1]
        if name.endswith(".sst"):
            name = name[: -len(".sst")]
        if name in _STREAMS and not _STREAMS[name].closed:
            raise RuntimeError(f"SST stream {name!r} already being produced")
        self.stream = _Stream(name=name, queue_depth=queue_depth)
        _STREAMS[name] = self.stream
        self.profile = EngineProfile(comm.size, "SST")
        self._trace_scope = f"SST:{name}"
        self._fold = None
        if posix is not None:
            self._fold = ProfileFold(self.profile, scope=self._trace_scope)
            posix.trace.subscribe(self._fold)
        self._step = -1
        self._in_step = False
        self._cur_vars: dict[str, Variable] = {}
        self._closed = False

    # -- write protocol (matches the BP engines) ----------------------------

    def begin_step(self) -> int:
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._in_step:
            raise RuntimeError("previous step not ended")
        self._step += 1
        self._in_step = True
        self._cur_vars = {}
        return self._step

    def declare_variable(self, name: str, dtype: str,
                         global_shape: tuple[int, ...],
                         entropy: str = "particle_float32") -> Variable:
        if not self._in_step:
            raise RuntimeError("call begin_step() first")
        var = self._cur_vars.get(name)
        if var is None:
            var = Variable(name=name, dtype=dtype,
                           global_shape=tuple(global_shape), entropy=entropy)
            self._cur_vars[name] = var
        return var

    def put(self, name: str, dtype: str, global_shape, rank, offset,
            extent, data, entropy: str = "particle_float32"):
        var = self.declare_variable(name, dtype, global_shape, entropy)
        return var.put_chunk(rank, tuple(offset), tuple(extent), data)

    def put_group(self, name: str, ranks: np.ndarray, nbytes_each,
                  entropy: str = "particle_float32") -> None:
        # streaming of synthetic groups: only sizes matter
        var = self.declare_variable(name, "uint8_t",
                                    (int(np.broadcast_to(
                                        np.asarray(nbytes_each), np.asarray(
                                            ranks).shape).sum()),),
                                    entropy)
        offset = 0
        ranks = np.asarray(ranks)
        sizes = np.broadcast_to(np.asarray(nbytes_each, dtype=np.int64),
                                ranks.shape)
        for r, n in zip(ranks, sizes):
            var.put_chunk(int(r), (offset,), (int(n),),
                          SyntheticPayload(int(n), entropy))
            offset += int(n)

    def end_step(self, overwrite_key: str | None = None) -> StepData:
        """Publish the step to the stream (network cost, no storage)."""
        if not self._in_step:
            raise RuntimeError("call begin_step() first")
        data = StepData(step=self._step)
        per_rank = np.zeros(self.comm.size)
        for name, var in self._cur_vars.items():
            chunks = []
            for c in var.chunks:
                per_rank[c.rank] += c.nbytes
                chunks.append({
                    "rank": c.rank,
                    "offset": c.offset,
                    "extent": c.extent,
                    "payload": c.payload,
                })
            data.variables[name] = {
                "dtype": var.dtype,
                "global_shape": var.global_shape,
                "chunks": chunks,
            }
            data.total_bytes += var.total_bytes
        # producers ship their chunks over the NIC
        cost = per_rank / self.comm.config.bandwidth
        self.comm.clocks += cost
        ranks = np.arange(self.comm.size)
        if self._fold is not None:
            with self.posix.trace.scope(self._trace_scope):
                self.posix.trace.emit(
                    "shuffle", ranks, nbytes=per_rank, duration=cost,
                    start=self.comm.clocks - cost, api="ENGINE",
                    layer="engine")
        else:  # no POSIX layer attached: fold directly
            self.profile.add("aggregation", ranks, cost)
        if len(self.stream.steps) >= self.stream.queue_depth:
            # SST discard policy when consumers lag (bounded memory)
            self.stream.steps.popleft()
            self.stream.dropped += 1
        self.stream.steps.append(data)
        self.stream.published += 1
        self._in_step = False
        return data

    def close(self) -> None:
        if self._in_step:
            raise RuntimeError("cannot close an engine mid-step")
        self.stream.closed = True
        if self._fold is not None:
            self.posix.trace.unsubscribe(self._fold)
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class SSTReader:
    """Consumer side: attaches to a live stream and drains steps."""

    def __init__(self, name: str, comm: VirtualComm | None = None):
        if name.endswith(".sst"):
            name = name[: -len(".sst")]
        stream = _STREAMS.get(name)
        if stream is None:
            raise ConnectionError(
                f"no SST stream named {name!r} is being produced; "
                f"advertised: {open_streams()}"
            )
        self.stream = stream
        self.comm = comm
        self.consumed = 0

    def begin_step(self) -> StepData | None:
        """Next available step, or None if the producer closed."""
        while not self.stream.steps:
            if self.stream.closed:
                return None
            raise BlockingIOError("no step available yet (producer active)")
        data = self.stream.steps.popleft()
        self.consumed += 1
        if self.comm is not None:
            self.comm.clocks += data.total_bytes / self.comm.config.bandwidth
        return data

    def get(self, data: StepData, name: str) -> np.ndarray:
        """Assemble a variable from a received step (real payloads)."""
        from repro.adios2.engine import _numpy_dtype

        entry = data.variables.get(name)
        if entry is None:
            raise KeyError(f"step {data.step} carries no variable {name!r}")
        out = np.zeros(entry["global_shape"],
                       dtype=_numpy_dtype(entry["dtype"]))
        for chunk in entry["chunks"]:
            payload = chunk["payload"]
            if isinstance(payload, SyntheticPayload):
                raise NotImplementedError(
                    "synthetic chunks carry no data to assemble")
            arr = np.frombuffer(payload.tobytes(), dtype=out.dtype)
            sel = tuple(slice(o, o + e) for o, e in
                        zip(chunk["offset"], chunk["extent"]))
            out[sel] = arr.reshape(chunk["extent"])
        return out


def reset_streams() -> None:
    """Clear the stream registry (test isolation)."""
    _STREAMS.clear()
