"""The Sustainable Staging Transport (SST) engine — streaming, no files.

The paper's future work (§VI): "The ADIOS2 SST engine enables the direct
connection of data producers and consumers via the ADIOS2 write/read
APIs, facilitating the movement of data between processes for in-situ
processing, analysis, and visualization."

This implementation provides exactly that for the virtual cluster: a
writer-side engine with the BP step API whose steps never touch the
filesystem — each ``end_step`` publishes the step to an in-memory stream
that one or more :class:`SSTReader` consumers drain, paying network
(not storage) costs.  Consumers attach by stream name, as SST consumers
attach via the engine's contact file.

Flow control mirrors ADIOS2's SST engine parameters:

* the staging buffer is bounded (``queue_depth`` steps, optionally
  ``max_buffer_bytes``); an entry is retired once every attached
  consumer has taken it;
* ``policy="discard"`` (SST's ``QueueFullPolicy=Discard``) drops the
  oldest buffered step when the buffer is full — consumers that had not
  reached it skip ahead;
* ``policy="block"`` (``QueueFullPolicy=Block``) refuses to publish into
  a full buffer: :class:`StagingBackpressure` is raised so a transport
  (see :mod:`repro.streaming.staging`) can model the producer stall in
  virtual time instead;
* each consumer holds an independent cursor, so N readers each observe
  every surviving step exactly once and in publish order;
* reader-side ``begin_step`` follows ADIOS2 semantics: a step when one
  is buffered, ``BlockingIOError`` while the producer is alive but the
  buffer is empty (``StepStatus.NOT_READY``), ``None`` after the
  producer closed and the buffer drained (``StepStatus.END_OF_STREAM``).

Streams live in a :class:`StreamRegistry` — the "contact file"
directory.  Engines and readers default to the module registry (kept
for API compatibility and reset via :func:`reset_streams`), but runs
should pass their own registry so streams cannot leak across runs,
sweep-executor forks, or tests.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.adios2.engine import EngineConfig
from repro.adios2.profiling import EngineProfile
from repro.adios2.variables import Variable
from repro.fs.payload import SyntheticPayload
from repro.mpi.comm import VirtualComm
from repro.trace.subscribers import ProfileFold

#: valid backpressure policies (ADIOS2 ``QueueFullPolicy``)
POLICIES = ("discard", "block")


class StagingBackpressure(BlockingIOError):
    """Raised on publish into a full staging buffer under ``block``."""


class StepStatus(enum.Enum):
    """Reader-side step availability (ADIOS2 ``StepStatus``)."""

    OK = "OK"
    NOT_READY = "NotReady"
    END_OF_STREAM = "EndOfStream"


class StreamRegistry:
    """A scoped "contact file" directory: stream name → live stream.

    One registry per run/session keeps streams from leaking between
    runs; :meth:`reset` is the teardown hook.
    """

    def __init__(self) -> None:
        self._streams: dict[str, _Stream] = {}

    def lookup(self, name: str) -> "_Stream | None":
        return self._streams.get(name)

    def advertise(self, stream: "_Stream") -> None:
        existing = self._streams.get(stream.name)
        if existing is not None and not existing.closed:
            raise RuntimeError(
                f"SST stream {stream.name!r} already being produced")
        self._streams[stream.name] = stream

    def open_streams(self) -> list[str]:
        """Names of currently-advertised streams (debug/monitoring)."""
        return sorted(n for n, s in self._streams.items() if not s.closed)

    def reset(self) -> None:
        """Clear the registry (run teardown / test isolation)."""
        self._streams.clear()


#: the process-default registry — kept only so ad-hoc engine/reader use
#: (and the pre-existing API) works without threading a registry through;
#: runs are expected to scope their own StreamRegistry
_DEFAULT_REGISTRY = StreamRegistry()


def open_streams() -> list[str]:
    """Names advertised in the default registry (debug/monitoring)."""
    return _DEFAULT_REGISTRY.open_streams()


def reset_streams() -> None:
    """Clear the default stream registry (test isolation)."""
    _DEFAULT_REGISTRY.reset()


@dataclass
class StepData:
    """One published step: variable name → assembled payload info."""

    step: int
    variables: dict[str, dict] = field(default_factory=dict)
    total_bytes: int = 0
    #: producer-side step attributes (e.g. ``kind``/``time_step`` tags)
    attributes: dict = field(default_factory=dict)


@dataclass
class _Stream:
    """Shared state between one producer and its consumers.

    ``entries`` holds the buffered steps; ``base`` is the publish index
    of ``entries[0]``, so step *i* of the stream's lifetime lives at
    ``entries[i - base]`` while buffered.  ``cursors`` maps consumer id
    → next publish index to take; an entry is retired once every cursor
    has passed it (and nothing retires while no consumer is attached —
    late consumers then see the oldest surviving steps).
    """

    name: str
    queue_depth: int
    policy: str = "discard"
    max_buffer_bytes: int | None = None
    entries: deque = field(default_factory=deque)
    base: int = 0
    published: int = 0
    closed: bool = False
    dropped: int = 0
    buffered_bytes: int = 0
    cursors: dict[int, int] = field(default_factory=dict)
    _next_cid: int = 0

    # -- consumer cursors -------------------------------------------------

    def attach(self) -> int:
        """Register a consumer; its cursor starts at the oldest entry."""
        cid = self._next_cid
        self._next_cid += 1
        self.cursors[cid] = self.base
        return cid

    def detach(self, cid: int) -> None:
        self.cursors.pop(cid, None)
        self._retire()

    def peek_for(self, cid: int) -> tuple[int, StepData] | None:
        """(publish index, step) next in line for one consumer, if any."""
        cursor = max(self.cursors[cid], self.base)  # skip dropped steps
        self.cursors[cid] = cursor
        if cursor - self.base >= len(self.entries):
            return None
        return cursor, self.entries[cursor - self.base]

    def advance(self, cid: int) -> None:
        self.cursors[cid] += 1
        self._retire()

    def status_for(self, cid: int) -> StepStatus:
        if self.peek_for(cid) is not None:
            return StepStatus.OK
        return StepStatus.END_OF_STREAM if self.closed else \
            StepStatus.NOT_READY

    def _retire(self) -> None:
        """Free entries every attached consumer has consumed."""
        if not self.cursors:
            return
        low = min(self.cursors.values())
        while self.entries and self.base < low:
            gone = self.entries.popleft()
            self.base += 1
            self.buffered_bytes -= gone.total_bytes

    # -- producer side ----------------------------------------------------

    def can_accept(self, nbytes: int) -> bool:
        """Room for one more step without dropping?"""
        if len(self.entries) >= self.queue_depth:
            return False
        if (self.max_buffer_bytes is not None and self.entries
                and self.buffered_bytes + nbytes > self.max_buffer_bytes):
            return False
        return True

    def publish(self, data: StepData) -> list[tuple[int, StepData]]:
        """Buffer one step; returns the (index, step) pairs dropped."""
        dropped: list[tuple[int, StepData]] = []
        while not self.can_accept(data.total_bytes):
            if self.policy == "block":
                raise StagingBackpressure(
                    f"stream {self.name!r} staging buffer full "
                    f"({len(self.entries)}/{self.queue_depth} steps, "
                    f"{self.buffered_bytes} bytes) under block policy")
            old = self.entries.popleft()
            dropped.append((self.base, old))
            self.base += 1
            self.buffered_bytes -= old.total_bytes
            self.dropped += 1
        self.entries.append(data)
        self.buffered_bytes += data.total_bytes
        self.published += 1
        return dropped


def assemble_variable(data: StepData, name: str) -> np.ndarray:
    """Assemble one variable of a received step from its chunks.

    Real payloads are placed at their (offset, extent) in the global
    shape — the reader-side counterpart of the §III-B ``storeChunk``
    procedure.  Synthetic chunks (modeled runs) carry no data.
    """
    from repro.adios2.engine import _numpy_dtype

    entry = data.variables.get(name)
    if entry is None:
        raise KeyError(f"step {data.step} carries no variable {name!r}")
    if entry.get("chunks") is None:
        raise NotImplementedError(
            "synthetic chunks carry no data to assemble")
    out = np.zeros(entry["global_shape"],
                   dtype=_numpy_dtype(entry["dtype"]))
    for chunk in entry["chunks"]:
        payload = chunk["payload"]
        if isinstance(payload, SyntheticPayload):
            raise NotImplementedError(
                "synthetic chunks carry no data to assemble")
        arr = np.frombuffer(payload.tobytes(), dtype=out.dtype)
        sel = tuple(slice(o, o + e) for o, e in
                    zip(chunk["offset"], chunk["extent"]))
        out[sel] = arr.reshape(chunk["extent"])
    return out


class SSTEngine:
    """Writer side of the staging transport."""

    engine_type = "SST"
    extension = ".sst"

    def __init__(self, posix, comm: VirtualComm, path: str,
                 mode: str = "w", config: EngineConfig | None = None,
                 queue_depth: int = 2, policy: str = "discard",
                 max_buffer_bytes: int | None = None,
                 registry: StreamRegistry | None = None):
        if mode != "w":
            raise ValueError("SSTEngine is write-side; use SSTReader to read")
        if policy not in POLICIES:
            raise ValueError(f"unknown backpressure policy {policy!r}; "
                             f"valid: {POLICIES}")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.posix = posix  # unused for data; kept for protocol parity
        self.comm = comm
        self.config = config or EngineConfig()
        self.registry = registry if registry is not None else \
            _DEFAULT_REGISTRY
        name = path.rsplit("/", 1)[-1]
        if name.endswith(".sst"):
            name = name[: -len(".sst")]
        self.stream = _Stream(name=name, queue_depth=queue_depth,
                              policy=policy,
                              max_buffer_bytes=max_buffer_bytes)
        self.registry.advertise(self.stream)
        self.profile = EngineProfile(comm.size, "SST")
        self._trace_scope = f"SST:{name}"
        self._fold = None
        if posix is not None:
            self._fold = ProfileFold(self.profile, scope=self._trace_scope)
            posix.trace.subscribe(self._fold)
        self._step = -1
        self._in_step = False
        self._cur_vars: dict[str, Variable] = {}
        self._cur_groups: list[tuple] = []
        self._cur_attrs: dict = {}
        #: (index, StepData) pairs the most recent end_step discarded
        self.last_dropped: list[tuple[int, StepData]] = []
        self._closed = False

    # -- write protocol (matches the BP engines) ----------------------------

    def begin_step(self) -> int:
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._in_step:
            raise RuntimeError("previous step not ended")
        self._step += 1
        self._in_step = True
        self._cur_vars = {}
        self._cur_groups = []
        self._cur_attrs = {}
        return self._step

    def declare_variable(self, name: str, dtype: str,
                         global_shape: tuple[int, ...],
                         entropy: str = "particle_float32") -> Variable:
        if not self._in_step:
            raise RuntimeError("call begin_step() first")
        var = self._cur_vars.get(name)
        if var is None:
            var = Variable(name=name, dtype=dtype,
                           global_shape=tuple(global_shape), entropy=entropy)
            self._cur_vars[name] = var
        return var

    def put(self, name: str, dtype: str, global_shape, rank, offset,
            extent, data, entropy: str = "particle_float32"):
        var = self.declare_variable(name, dtype, global_shape, entropy)
        return var.put_chunk(rank, tuple(offset), tuple(extent), data)

    def put_group(self, name: str, ranks: np.ndarray, nbytes_each,
                  entropy: str = "particle_float32") -> None:
        """Stage a synthetic per-rank byte group (modeled runs).

        Only sizes matter; the whole rank vector is kept as one record,
        so scaled runs never loop over ranks.
        """
        if not self._in_step:
            raise RuntimeError("call begin_step() first")
        ranks = np.atleast_1d(np.asarray(ranks, dtype=np.int64))
        sizes = np.broadcast_to(np.asarray(nbytes_each, dtype=np.int64),
                                ranks.shape).copy()
        self._cur_groups.append((name, ranks, sizes, entropy))

    def put_attribute(self, name: str, value) -> None:
        """Tag the current step (rides along in ``StepData.attributes``)."""
        if not self._in_step:
            raise RuntimeError("call begin_step() first")
        self._cur_attrs[name] = value

    def pending_bytes(self) -> int:
        """Bytes the current (un-ended) step would publish."""
        total = sum(var.total_bytes for var in self._cur_vars.values())
        total += sum(int(sizes.sum()) for _, _, sizes, _ in self._cur_groups)
        return int(total)

    def end_step(self) -> StepData:
        """Publish the step to the stream (network cost, no storage)."""
        if not self._in_step:
            raise RuntimeError("call begin_step() first")
        data = StepData(step=self._step, attributes=dict(self._cur_attrs))
        per_rank = np.zeros(self.comm.size)
        for name, var in self._cur_vars.items():
            chunks = []
            for c in var.chunks:
                per_rank[c.rank] += c.nbytes
                chunks.append({
                    "rank": c.rank,
                    "offset": c.offset,
                    "extent": c.extent,
                    "payload": c.payload,
                })
            data.variables[name] = {
                "dtype": var.dtype,
                "global_shape": var.global_shape,
                "chunks": chunks,
            }
            data.total_bytes += var.total_bytes
        for name, ranks_g, sizes_g, entropy in self._cur_groups:
            np.add.at(per_rank, ranks_g, sizes_g)
            total = int(sizes_g.sum())
            data.variables[name] = {
                "dtype": "uint8_t",
                "global_shape": (total,),
                "chunks": None,  # synthetic: sizes only
                "group_ranks": ranks_g,
                "group_sizes": sizes_g,
                "entropy": entropy,
            }
            data.total_bytes += total
        # under block policy, refuse before charging any cost so the
        # caller (a staging transport) can drain consumers, model the
        # stall in virtual time, and re-issue the end_step
        if self.stream.policy == "block" and \
                not self.stream.can_accept(data.total_bytes):
            raise StagingBackpressure(
                f"stream {self.stream.name!r} staging buffer full "
                f"({len(self.stream.entries)}/{self.stream.queue_depth} "
                f"steps) under block policy")
        # producers ship their chunks over the NIC (derated live by any
        # active NIC-flap fault — the repro.cluster network model, not
        # the storage model)
        cost = per_rank / self.comm.effective_bandwidth()
        self.comm.clocks += cost
        ranks = np.arange(self.comm.size)
        bus = self.posix.trace if self._fold is not None else None
        if bus is not None:
            with bus.scope(self._trace_scope):
                bus.emit("shuffle", ranks, nbytes=per_rank, duration=cost,
                         start=self.comm.clocks - cost, api="ENGINE",
                         layer="engine")
                if bus.wants("publish"):
                    with bus.step(self._step):
                        bus.emit("publish", ranks, nbytes=per_rank,
                                 duration=cost,
                                 start=self.comm.clocks - cost,
                                 api="SST", layer="stream")
        else:  # no POSIX layer attached: fold directly
            self.profile.add("aggregation", ranks, cost)
        self.last_dropped = self.stream.publish(data)
        if bus is not None and self.last_dropped and bus.wants("drop"):
            for _idx, old in self.last_dropped:
                with bus.step(old.step):
                    bus.emit("drop", np.array([0]), nbytes=old.total_bytes,
                             start=self.comm.clocks[:1], api="SST",
                             layer="stream")
        self._in_step = False
        return data

    def close(self) -> None:
        if self._in_step:
            raise RuntimeError("cannot close an engine mid-step")
        self.stream.closed = True
        if self._fold is not None:
            self.posix.trace.unsubscribe(self._fold)
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class SSTReader:
    """Consumer side: an independent cursor over a live stream."""

    def __init__(self, name: str, comm: VirtualComm | None = None,
                 registry: StreamRegistry | None = None, bus=None):
        if name.endswith(".sst"):
            name = name[: -len(".sst")]
        registry = registry if registry is not None else _DEFAULT_REGISTRY
        stream = registry.lookup(name)
        if stream is None:
            raise ConnectionError(
                f"no SST stream named {name!r} is being produced; "
                f"advertised: {registry.open_streams()}"
            )
        self.stream = stream
        self.comm = comm
        self.bus = bus
        self.consumed = 0
        self._cid = stream.attach()

    def status(self) -> StepStatus:
        """ADIOS2 ``BeginStep`` status without taking the step."""
        return self.stream.status_for(self._cid)

    def begin_step(self) -> StepData | None:
        """Next available step, or None if the producer closed.

        Raises ``BlockingIOError`` while the producer is alive but no
        step is buffered for this cursor (``StepStatus.NOT_READY``).
        """
        peek = self.stream.peek_for(self._cid)
        if peek is None:
            if self.stream.closed:
                return None
            raise BlockingIOError("no step available yet (producer active)")
        _index, data = peek
        self.stream.advance(self._cid)
        self.consumed += 1
        if self.comm is not None:
            cost = data.total_bytes / self.comm.effective_bandwidth()
            self.comm.clocks += cost
            if self.bus is not None and self.bus.wants("deliver"):
                ranks = np.arange(self.comm.size)
                with self.bus.step(data.step):
                    self.bus.emit(
                        "deliver", ranks,
                        nbytes=data.total_bytes / self.comm.size,
                        duration=cost, start=self.comm.clocks - cost,
                        api="SST", layer="stream")
        return data

    def detach(self) -> None:
        """Release this cursor (entries it gated can retire)."""
        self.stream.detach(self._cid)

    def get(self, data: StepData, name: str) -> np.ndarray:
        """Assemble a variable from a received step (real payloads)."""
        return assemble_variable(data, name)
