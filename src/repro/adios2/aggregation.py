"""Two-level aggregation: N ranks funnel into M subfiles.

"For optimal I/O performance in BIT1, N processes must distribute their
output across M files" (§IV-C).  ADIOS2's default allocates one
aggregator per node (a single shared file among the MPI processes of each
node); the ``OPENPMD_ADIOS2_BP5_NumAgg`` parameter overrides the desired
number of output files.  This module computes the rank→aggregator map and
the per-aggregator byte loads; the engines use it every flush.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.comm import VirtualComm
from repro.util.scatter import scatter_add


@dataclass(frozen=True)
class AggregationPlan:
    """Immutable rank→aggregator assignment for one engine instance."""

    num_ranks: int
    aggregator_ranks: np.ndarray   # (M,) global ranks that own subfiles
    agg_index_of_rank: np.ndarray  # (N,) subfile index each rank sends to

    @property
    def num_aggregators(self) -> int:
        return len(self.aggregator_ranks)

    def per_aggregator_bytes(self, per_rank_bytes: np.ndarray) -> np.ndarray:
        """Sum each subfile's incoming bytes (vectorised bincount)."""
        per_rank_bytes = np.asarray(per_rank_bytes)
        if per_rank_bytes.shape != (self.num_ranks,):
            raise ValueError(
                f"expected ({self.num_ranks},) byte array, "
                f"got {per_rank_bytes.shape}"
            )
        return np.bincount(self.agg_index_of_rank, weights=per_rank_bytes,
                           minlength=self.num_aggregators).astype(np.int64)

    def remote_bytes(self, per_rank_bytes: np.ndarray) -> np.ndarray:
        """Bytes each rank ships to a *different* rank (network traffic)."""
        per_rank_bytes = np.asarray(per_rank_bytes)
        own_agg_rank = self.aggregator_ranks[self.agg_index_of_rank]
        is_local = own_agg_rank == np.arange(self.num_ranks)
        return np.where(is_local, 0, per_rank_bytes)

    def failover(self, dead_ranks) -> "AggregationPlan":
        """Reassign dead aggregators' subfiles to surviving aggregators.

        The subfile set is immutable mid-run (BP subfiles already exist
        on disk), so recovery keeps every subfile index alive but hands
        the dead owners' subfiles round-robin to surviving aggregator
        ranks — a survivor then drives two (or more) subfile streams and
        pays the bandwidth skew in both the gather and the write phase.
        Returns self when no owner died.
        """
        dead = set(int(r) for r in np.atleast_1d(np.asarray(dead_ranks)))
        owners = self.aggregator_ranks
        survivors = [int(r) for r in owners if int(r) not in dead]
        if len(survivors) == len(owners):
            return self
        if not survivors:
            raise RuntimeError("all aggregators died; no failover target")
        new_owners = owners.copy()
        j = 0
        for i, r in enumerate(owners):
            if int(r) in dead:
                new_owners[i] = survivors[j % len(survivors)]
                j += 1
        return AggregationPlan(
            num_ranks=self.num_ranks,
            aggregator_ranks=new_owners,
            agg_index_of_rank=self.agg_index_of_rank,
        )


def plan_aggregation(comm: VirtualComm,
                     num_aggregators: int | None = None) -> AggregationPlan:
    """Build the aggregation plan ADIOS2 would use.

    ``num_aggregators=None`` reproduces the BP4 default: one aggregator
    (and hence one subfile) per node.  Explicit values spread aggregators
    evenly over nodes first (so 2 per node at M = 2×nodes, matching the
    paper's observation that the 400-aggregator optimum on 200 nodes is
    "two aggregators per node"), and ranks are assigned to the nearest
    aggregator on their node where possible.
    """
    n = comm.size
    if num_aggregators is None:
        agg_ranks = comm.node_leaders()
    else:
        if not 1 <= num_aggregators <= n:
            raise ValueError(
                f"num_aggregators must be in [1, {n}], got {num_aggregators}"
            )
        # evenly spaced ranks: this lands ceil(M/nodes) aggregators per
        # node for M >= nodes and spreads across nodes for M < nodes
        agg_ranks = np.unique(
            np.floor(np.arange(num_aggregators) * (n / num_aggregators))
            .astype(np.int64)
        )
    # each rank sends to the closest aggregator at or below it
    agg_index = np.searchsorted(agg_ranks, np.arange(n), side="right") - 1
    agg_index = np.clip(agg_index, 0, len(agg_ranks) - 1)
    return AggregationPlan(
        num_ranks=n,
        aggregator_ranks=agg_ranks,
        agg_index_of_rank=agg_index,
    )


def gather_cost_seconds(plan: AggregationPlan, per_rank_bytes: np.ndarray,
                        comm: VirtualComm) -> np.ndarray:
    """Per-rank virtual seconds for shuffling chunks to the aggregators.

    Senders pay their outgoing volume at NIC bandwidth; aggregators pay
    their incoming volume.  Node-local transfers are modelled at memory
    speed (effectively free at these sizes) — shared-memory transport.
    """
    nic = comm.effective_bandwidth()
    out = np.zeros(comm.size, dtype=np.float64)
    remote = plan.remote_bytes(per_rank_bytes).astype(np.float64)
    out += remote / nic
    incoming = plan.per_aggregator_bytes(per_rank_bytes).astype(np.float64)
    own = np.zeros(comm.size, dtype=np.float64)
    scatter_add(own, plan.aggregator_ranks, incoming)
    local_own = np.zeros(comm.size, dtype=np.float64)
    scatter_add(local_own, plan.aggregator_ranks[plan.agg_index_of_rank],
                np.where(remote > 0, 0.0, per_rank_bytes))
    out += np.maximum(own - local_own, 0.0) / nic
    return out
