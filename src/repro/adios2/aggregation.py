"""Two-level aggregation: N ranks funnel into M subfiles.

"For optimal I/O performance in BIT1, N processes must distribute their
output across M files" (§IV-C).  ADIOS2's default allocates one
aggregator per node (a single shared file among the MPI processes of each
node); the ``OPENPMD_ADIOS2_BP5_NumAgg`` parameter overrides the desired
number of output files.  This module computes the rank→aggregator map and
the per-aggregator byte loads; the engines use it every flush.

Two cost models are provided:

* :func:`gather_cost_seconds` — the one-level (BP4-style) shuffle where
  every rank ships its chunk straight to its subfile owner.  Intra-node
  legs run over shared memory; cross-node legs serialise on the sending
  node's NIC.
* :func:`two_level_gather_cost` — the BP5 shuffle: ranks first funnel to
  a node-local staging leader at memory bandwidth (level 1), then node
  leaders ship the per-subfile volumes to the subfile owners (level 2) —
  again shm within a node, NIC across nodes.  With one rank per node the
  funnel is empty and the model degenerates *bit-exactly* to the
  one-level cost (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.comm import VirtualComm
from repro.util.scatter import scatter_add


@dataclass(frozen=True)
class AggregationPlan:
    """Immutable rank→aggregator assignment for one engine instance."""

    num_ranks: int
    aggregator_ranks: np.ndarray   # (M,) global ranks that own subfiles
    agg_index_of_rank: np.ndarray  # (N,) subfile index each rank sends to
    #: node index of each rank; ``None`` degrades locality checks to rank
    #: equality (every rank its own node — the pre-topology behaviour)
    node_of_rank: np.ndarray | None = None

    @property
    def num_aggregators(self) -> int:
        return len(self.aggregator_ranks)

    def per_aggregator_bytes(self, per_rank_bytes: np.ndarray) -> np.ndarray:
        """Sum each subfile's incoming bytes (vectorised bincount)."""
        per_rank_bytes = np.asarray(per_rank_bytes)
        if per_rank_bytes.shape != (self.num_ranks,):
            raise ValueError(
                f"expected ({self.num_ranks},) byte array, "
                f"got {per_rank_bytes.shape}"
            )
        return np.bincount(self.agg_index_of_rank, weights=per_rank_bytes,
                           minlength=self.num_aggregators).astype(np.int64)

    def _node_ids(self) -> np.ndarray:
        if self.node_of_rank is not None:
            return self.node_of_rank
        return np.arange(self.num_ranks)

    def remote_bytes(self, per_rank_bytes: np.ndarray) -> np.ndarray:
        """Bytes each rank ships to a different *node* (NIC traffic).

        Same-node transfers — including to a different rank on the same
        node — go over shared memory, not the interconnect, so they do
        not count as remote.
        """
        per_rank_bytes = np.asarray(per_rank_bytes)
        own_agg_rank = self.aggregator_ranks[self.agg_index_of_rank]
        node = self._node_ids()
        is_local = node[own_agg_rank] == node
        return np.where(is_local, 0, per_rank_bytes)

    def failover(self, dead_ranks) -> "AggregationPlan":
        """Reassign dead aggregators' subfiles to surviving aggregators.

        The subfile set is immutable mid-run (BP subfiles already exist
        on disk), so recovery keeps every subfile index alive but hands
        the dead owners' subfiles round-robin to surviving aggregator
        ranks — a survivor then drives two (or more) subfile streams and
        pays the bandwidth skew in both the gather and the write phase.
        Returns self when no owner died.
        """
        dead = set(int(r) for r in np.atleast_1d(np.asarray(dead_ranks)))
        owners = self.aggregator_ranks
        survivors = [int(r) for r in owners if int(r) not in dead]
        if len(survivors) == len(owners):
            return self
        if not survivors:
            raise RuntimeError("all aggregators died; no failover target")
        new_owners = owners.copy()
        j = 0
        for i, r in enumerate(owners):
            if int(r) in dead:
                new_owners[i] = survivors[j % len(survivors)]
                j += 1
        return AggregationPlan(
            num_ranks=self.num_ranks,
            aggregator_ranks=new_owners,
            agg_index_of_rank=self.agg_index_of_rank,
            node_of_rank=self.node_of_rank,
        )


def plan_aggregation(comm: VirtualComm,
                     num_aggregators: int | None = None) -> AggregationPlan:
    """Build the aggregation plan ADIOS2 would use.

    ``num_aggregators=None`` reproduces the BP4 default: one aggregator
    (and hence one subfile) per node.  Explicit values spread aggregators
    evenly over nodes first (so 2 per node at M = 2×nodes, matching the
    paper's observation that the 400-aggregator optimum on 200 nodes is
    "two aggregators per node"), and ranks are assigned to the nearest
    aggregator on their node where possible.
    """
    n = comm.size
    if num_aggregators is None:
        agg_ranks = comm.node_leaders()
        if comm.has_block_topology():
            # the nearest at-or-below leader of rank r is its own node's
            # leader, so the subfile map *is* the topology array — alias
            # it (O(nodes) resident) instead of materialising an O(ranks)
            # searchsorted result; the values are provably identical
            return AggregationPlan(
                num_ranks=n,
                aggregator_ranks=agg_ranks,
                agg_index_of_rank=comm.node_of_rank,
                node_of_rank=comm.node_of_rank,
            )
    else:
        if not 1 <= num_aggregators <= n:
            raise ValueError(
                f"num_aggregators must be in [1, {n}], got {num_aggregators}"
            )
        if num_aggregators == 1:
            # single-subfile degenerate case: everyone sends to rank 0 —
            # a stride-0 broadcast view instead of an O(ranks) zeros map
            return AggregationPlan(
                num_ranks=n,
                aggregator_ranks=np.zeros(1, dtype=np.int64),
                agg_index_of_rank=np.broadcast_to(
                    np.zeros(1, dtype=np.int64), (n,)),
                node_of_rank=comm.node_of_rank,
            )
        # evenly spaced ranks: this lands ceil(M/nodes) aggregators per
        # node for M >= nodes and spreads across nodes for M < nodes
        agg_ranks = np.unique(
            np.floor(np.arange(num_aggregators) * (n / num_aggregators))
            .astype(np.int64)
        )
    # each rank sends to the closest aggregator at or below it
    agg_index = np.searchsorted(agg_ranks, np.arange(n), side="right") - 1
    agg_index = np.clip(agg_index, 0, len(agg_ranks) - 1)
    return AggregationPlan(
        num_ranks=n,
        aggregator_ranks=agg_ranks,
        agg_index_of_rank=agg_index,
        node_of_rank=comm.node_of_rank,
    )


def gather_cost_seconds(plan: AggregationPlan, per_rank_bytes: np.ndarray,
                        comm: VirtualComm) -> np.ndarray:
    """Per-rank virtual seconds for the one-level shuffle to aggregators.

    Sender legs: shipping to yourself is free; shipping to another rank
    on the same node runs at shared-memory bandwidth; shipping across
    nodes pays one message latency plus the sending node's total NIC
    egress (the NIC is time-shared among that node's senders, so every
    cross-node sender on a node observes the node's serialised egress).
    Receiver legs: each aggregator pays its incoming volume at the
    transport that leg arrived on (shm for same-node, NIC for
    cross-node).
    """
    n = comm.size
    b = np.asarray(per_rank_bytes, dtype=np.float64)
    nic = comm.effective_bandwidth()
    shm = comm.shm_bandwidth()
    lat = comm.config.latency
    node = plan.node_of_rank if plan.node_of_rank is not None \
        else comm.node_of_rank
    owner = plan.aggregator_ranks[plan.agg_index_of_rank]
    self_mask = owner == np.arange(n)
    same_node = node[owner] == node
    local = same_node & ~self_mask & (b > 0)
    cross = ~same_node & (b > 0)
    out = np.zeros(n, dtype=np.float64)
    out[local] = b[local] / shm
    if cross.any():
        nnodes = int(node.max()) + 1
        egress = np.bincount(node[cross], weights=b[cross],
                             minlength=nnodes)
        out[cross] = lat + egress[node[cross]] / nic
    # receiver legs: per-entry division before the scatter so the
    # two-level degenerate case (one rank per node) is bit-identical
    scatter_add(out, owner[cross], b[cross] / nic)
    scatter_add(out, owner[local], b[local] / shm)
    return out


def two_level_gather_cost(plan: AggregationPlan, per_rank_bytes: np.ndarray,
                          comm: VirtualComm) -> np.ndarray:
    """Per-rank seconds for the BP5 two-level (shm + inter-node) shuffle.

    Level 1 — node funnel: every rank that is not its node's staging
    leader copies its chunk into the leader's shared-memory segment; the
    leader pays the matching ingress.  The leader is the node's first
    subfile-owner rank when one exists (it already holds a staging
    buffer), else the node's first rank.

    Level 2 — subfile shuffle: each node leader ships one consolidated
    message per destination subfile.  A leader that owns the subfile
    itself moves nothing; a same-node destination runs both legs over
    shm; cross-node destinations serialise on the leader's NIC (one
    latency per message plus the node's total cross-node egress) and the
    owner pays NIC ingress.

    With one rank per node, level 1 is empty and level 2 reduces term by
    term to :func:`gather_cost_seconds` — bit-identical, property-tested.
    """
    n = comm.size
    b = np.asarray(per_rank_bytes, dtype=np.float64)
    nic = comm.effective_bandwidth()
    shm = comm.shm_bandwidth()
    lat = comm.config.latency
    node = plan.node_of_rank if plan.node_of_rank is not None \
        else comm.node_of_rank
    nnodes = int(node.max()) + 1
    m = plan.num_aggregators
    owners = plan.aggregator_ranks

    # staging leader per node: first subfile owner on the node, if any
    leader = np.full(nnodes, n, dtype=np.int64)
    np.minimum.at(leader, node[owners], owners)
    missing = leader == n
    if missing.any():
        first = np.full(nnodes, n, dtype=np.int64)
        np.minimum.at(first, node, np.arange(n))
        leader[missing] = first[missing]

    out = np.zeros(n, dtype=np.float64)

    # level 1: non-leader ranks funnel into the leader's shm segment
    is_leader = np.zeros(n, dtype=bool)
    is_leader[leader] = True
    l1 = ~is_leader & (b > 0)
    out[l1] = b[l1] / shm
    scatter_add(out, leader[node[l1]], b[l1] / shm)

    # level 2: sparse (node, subfile) volumes (int64: node maps may be
    # int32 and node*m overflows 32 bits at scale)
    keys = node.astype(np.int64, copy=False) * m + plan.agg_index_of_rank
    vol = np.bincount(keys, weights=b, minlength=nnodes * m)
    vol = vol.reshape(nnodes, m)
    src, agg = np.nonzero(vol)
    if src.size == 0:
        return out
    v = vol[src, agg]
    dst_rank = owners[agg]
    dst_node = node[dst_rank]
    src_leader = leader[src]
    self_leg = src_leader == dst_rank
    samenode = (dst_node == src) & ~self_leg
    crossnode = dst_node != src

    scatter_add(out, src_leader[samenode], v[samenode] / shm)
    scatter_add(out, dst_rank[samenode], v[samenode] / shm)

    if crossnode.any():
        nmsg = np.bincount(src[crossnode], minlength=nnodes)
        egress = np.bincount(src[crossnode], weights=v[crossnode],
                             minlength=nnodes)
        busy = np.nonzero(nmsg)[0]
        scatter_add(out, leader[busy], nmsg[busy] * lat + egress[busy] / nic)
        scatter_add(out, dst_rank[crossnode], v[crossnode] / nic)
    return out


class BlockedShuffle:
    """Streaming evaluation of the gather cost over rank blocks.

    Produces *bit-identical* per-rank costs to :func:`gather_cost_seconds`
    (or :func:`two_level_gather_cost` with ``two_level=True``) while only
    ever holding O(block + nodes + aggregators) state — the memory plane's
    chunked flush path.  The exactness argument has two halves:

    * byte tallies (NIC egress, sparse (node, subfile) volumes, per-
      aggregator loads) are sums of integer-valued floats below 2**53,
      so accumulating per-block partial sums is exact regardless of how
      the blocks split the element stream;
    * receiver-side time legs are *non*-integer floats, so those chains
      are kept in per-owner accumulator slots and extended block by
      block in exactly the element order the unchunked ``scatter_add``
      calls would use (all cross-node legs in global rank order, then
      all same-node legs), collapsing to one clock add per owner at
      :meth:`finish` — the same single add the unchunked path performs.

    Protocol (the engine drives it)::

        sh = BlockedShuffle(plan, comm, block, two_level=...)
        for lo, hi in blocks: sh.prepare(lo, hi, stored[lo:hi])
        for lo, hi in blocks: clocks[lo:hi] += sh.send_legs(lo, hi, ...)
        if sh.needs_local_pass:
            for lo, hi in blocks: sh.local_recv(lo, hi, stored[lo:hi])
        owner_ranks, recv = sh.finish()
        clocks[owner_ranks] += recv
    """

    def __init__(self, plan: AggregationPlan, comm: VirtualComm,
                 block: int, two_level: bool = False):
        self.plan = plan
        self.two_level = two_level
        self.nic = comm.effective_bandwidth()
        self.shm = comm.shm_bandwidth()
        self.lat = comm.config.latency
        self.node = plan.node_of_rank if plan.node_of_rank is not None \
            else comm.node_of_rank
        self.owners = plan.aggregator_ranks
        self.agg_index = plan.agg_index_of_rank
        self.m = plan.num_aggregators
        n = plan.num_ranks
        self.nnodes = int(self.node.max()) + 1
        self.per_agg = np.zeros(self.m, dtype=np.int64)
        if two_level:
            # staging leader per node: first subfile owner, else first
            # rank — found blockwise so no O(ranks) index temporary
            leader = np.full(self.nnodes, n, dtype=np.int64)
            np.minimum.at(leader, self.node[self.owners], self.owners)
            missing = leader == n
            if missing.any():
                first = np.full(self.nnodes, n, dtype=np.int64)
                for lo in range(0, n, block):
                    hi = min(n, lo + block)
                    np.minimum.at(first, self.node[lo:hi],
                                  np.arange(lo, hi))
                leader[missing] = first[missing]
            self.leader = leader
            self._sorted_leaders = np.sort(leader)
            self.uranks = np.unique(np.concatenate([leader, self.owners]))
            self._vol: dict[int, float] = {}
        else:
            self.uranks = np.unique(self.owners)
            self.egress = np.zeros(self.nnodes)
        self.recv = np.zeros(len(self.uranks))

    @property
    def needs_local_pass(self) -> bool:
        return not self.two_level

    def _slots(self, ranks: np.ndarray) -> np.ndarray:
        return np.searchsorted(self.uranks, ranks)

    def _masks(self, lo: int, hi: int, b: np.ndarray):
        owner_blk = self.owners[self.agg_index[lo:hi]]
        node_blk = self.node[lo:hi]
        same = self.node[owner_blk] == node_blk
        self_mask = owner_blk == np.arange(lo, hi)
        local = same & ~self_mask & (b > 0)
        cross = ~same & (b > 0)
        return owner_blk, node_blk, local, cross

    # -- pass 0: exact integer tallies ---------------------------------

    def prepare(self, lo: int, hi: int, b: np.ndarray) -> None:
        """Accumulate egress / sparse volumes / per-subfile loads."""
        idx_blk = np.ascontiguousarray(self.agg_index[lo:hi])
        self.per_agg += np.bincount(
            idx_blk, weights=b, minlength=self.m).astype(np.int64)
        if self.two_level:
            keys = self.node[lo:hi].astype(np.int64) * self.m + idx_blk
            uk, inv = np.unique(keys, return_inverse=True)
            sums = np.bincount(inv, weights=b)
            vol = self._vol
            for k, s in zip(uk.tolist(), sums.tolist()):
                vol[k] = vol.get(k, 0.0) + s
            return
        _owner_blk, node_blk, _local, cross = self._masks(lo, hi, b)
        if cross.any():
            self.egress += np.bincount(node_blk[cross], weights=b[cross],
                                       minlength=self.nnodes)

    # -- pass 1: sender legs (returned) + in-order receiver chains -----

    def send_legs(self, lo: int, hi: int, b: np.ndarray) -> np.ndarray:
        out = np.zeros(hi - lo)
        if self.two_level:
            r = np.arange(lo, hi)
            pos = np.searchsorted(self._sorted_leaders, r)
            pos = np.minimum(pos, len(self._sorted_leaders) - 1)
            is_leader = self._sorted_leaders[pos] == r
            l1 = ~is_leader & (b > 0)
            out[l1] = b[l1] / self.shm
            # a non-leader *owner* chains its funnel leg ahead of its
            # receiver legs in the unchunked evaluation; divert it into
            # the accumulator slot (0.0 + x == x) and zero the per-block
            # clock add (+0.0 is exact) to preserve that chain order
            upos = np.searchsorted(self.uranks, r)
            in_u = np.minimum(upos, len(self.uranks) - 1)
            diverted = l1 & (self.uranks[in_u] == r)
            if diverted.any():
                np.add.at(self.recv, upos[diverted], out[diverted])
                out[diverted] = 0.0
            if l1.any():
                tgt = self.leader[self.node[lo:hi][l1]]
                np.add.at(self.recv, self._slots(tgt), b[l1] / self.shm)
            return out
        owner_blk, node_blk, local, cross = self._masks(lo, hi, b)
        out[local] = b[local] / self.shm
        if cross.any():
            out[cross] = self.lat + self.egress[node_blk[cross]] / self.nic
            np.add.at(self.recv, self._slots(owner_blk[cross]),
                      b[cross] / self.nic)
        return out

    # -- pass 2 (one-level only): same-node receiver legs --------------

    def local_recv(self, lo: int, hi: int, b: np.ndarray) -> None:
        owner_blk, _node_blk, local, _cross = self._masks(lo, hi, b)
        if local.any():
            np.add.at(self.recv, self._slots(owner_blk[local]),
                      b[local] / self.shm)

    # -- collapse ------------------------------------------------------

    def finish(self) -> tuple[np.ndarray, np.ndarray]:
        """Apply any deferred legs; returns ``(owner_ranks, recv)``."""
        if self.two_level and self._vol:
            keys = np.array(sorted(self._vol), dtype=np.int64)
            v = np.array([self._vol[k] for k in keys.tolist()])
            nz = v != 0.0  # np.nonzero(vol) skips zero-volume cells
            keys, v = keys[nz], v[nz]
            if keys.size:
                src = keys // self.m
                agg = keys % self.m
                dst_rank = self.owners[agg]
                dst_node = self.node[dst_rank]
                src_leader = self.leader[src]
                self_leg = src_leader == dst_rank
                samenode = (dst_node == src) & ~self_leg
                crossnode = dst_node != src
                np.add.at(self.recv, self._slots(src_leader[samenode]),
                          v[samenode] / self.shm)
                np.add.at(self.recv, self._slots(dst_rank[samenode]),
                          v[samenode] / self.shm)
                if crossnode.any():
                    nmsg = np.bincount(src[crossnode],
                                       minlength=self.nnodes)
                    egress = np.bincount(src[crossnode],
                                         weights=v[crossnode],
                                         minlength=self.nnodes)
                    busy = np.nonzero(nmsg)[0]
                    np.add.at(self.recv, self._slots(self.leader[busy]),
                              nmsg[busy] * self.lat + egress[busy] / self.nic)
                    np.add.at(self.recv, self._slots(dst_rank[crossnode]),
                              v[crossnode] / self.nic)
        return self.uranks, self.recv
