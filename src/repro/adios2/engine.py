"""ADIOS2 BP engine: steps, staging, operators, aggregation, subfiles.

Reproduces the write path of the BP4/BP5 file engines (§II-A, Fig. 1):
an output "file" is a *directory* containing one data subfile per
aggregator (``data.0`` … ``data.M-1``), a metadata file (``md.0``), an
index table (``md.idx``) and, when profiling is on, ``profiling.json``
(BP5 adds a second metadata file ``mmd.0``).

Within a step, ranks ``put`` chunks of variables.  ``end_step``:

1. stages every chunk — an uncompressed put pays a staging **memcpy**
   (profiled; this is what Fig. 8 shows), a compressed put instead pays
   operator CPU and *skips the copy* (compressors emit straight into the
   staging buffer);
2. shuffles chunks to their aggregator ranks (network cost);
3. appends each aggregator's block to its subfile with the collective
   write-rate model, or overwrites in place when the step is a rewrite of
   an earlier step (BIT1's iteration-0 checkpoint semantics — on-disk
   size stays one copy while transferred bytes accumulate);
4. appends index/metadata records (rank 0).

Functional mode (real payloads) produces a self-describing container:
``md.0`` holds JSON-lines chunk records and the subfiles hold the (maybe
compressed) bytes, so a fresh engine can re-open the directory and read
every variable back — checkpoint/restart round-trips work end to end.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.adios2.aggregation import (
    AggregationPlan,
    BlockedShuffle,
    gather_cost_seconds,
    plan_aggregation,
    two_level_gather_cost,
)
from repro.mem import SplitValues, current_budget
from repro.adios2.profiling import EngineProfile
from repro.adios2.variables import Attribute, Chunk, Variable
from repro.compression.api import Compressor, get_compressor
from repro.fs.payload import RealPayload, SyntheticPayload
from repro.fs.posix import PosixIO
from repro.mpi.comm import VirtualComm
from repro.trace.subscribers import ProfileFold
from repro.util.scatter import scatter_add

#: metadata size model (bytes) — calibrated so BP directory md files stay
#: in the few-hundred-KiB range Table II implies
MD0_HEADER = 1024
MD0_STEP_BASE = 512
MD0_PER_AGG = 64
MDIDX_HEADER = 64
MDIDX_PER_STEP = 64


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs (the paper's tuning surface)."""

    #: number of subfiles/aggregators; None = ADIOS2 default (1 per node).
    #: This is the ``OPENPMD_ADIOS2_BP5_NumAgg`` parameter of §IV-C.
    num_aggregators: int | None = None
    #: operator applied to every put ("blosc", "bzip2", or None)
    compressor: str | None = None
    #: emit profiling.json on close (OPENPMD_ADIOS2_HAVE_PROFILING=1)
    profiling: bool = False
    #: staging-copy bandwidth for the memcpy accounting, bytes/s
    memcpy_bandwidth: float = 8.0e9
    #: staging-buffer bound per aggregator; None = unbounded (BP4's
    #: "aggressive optimization"), a value = BP5's "tighter control over
    #: the host memory usage": flushes happen in bounded batches
    buffer_chunk_size: int | None = None
    #: BP5 ``AsyncWrite``: drain subfiles asynchronously behind the next
    #: step's compute instead of blocking ``end_step`` (double-buffered:
    #: a new flush waits for the previous drain of its subfile)
    async_drain: bool = False
    #: cap on resident staging bytes per aggregator when async draining;
    #: ``Put()`` blocks until the old buffer drains below it (BP5's
    #: MaxShmSize-style control), so peak host memory never exceeds
    #: ``max(bound, step_bytes)`` while total wait time is unchanged
    host_memory_bound: int | None = None
    #: memory plane: evaluate span-staged flushes in rank blocks of this
    #: size — bit-identical accounting with O(block) temporaries instead
    #: of O(ranks) (million-rank runs); None = whole-job evaluation
    rank_block_size: int | None = None
    #: "rank" (real ADIOS2 layout) or "node": resolution of the
    #: profiling.json counter axis — "node" keeps the profile O(nodes)
    profile_granularity: str = "rank"


@dataclass
class _IndexEntry:
    """One stored chunk (functional mode)."""

    step_key: str
    var: str
    dtype: str
    rank: int
    subfile: int
    offset: int
    stored_nbytes: int
    raw_nbytes: int
    global_shape: tuple[int, ...]
    chunk_offset: tuple[int, ...]
    chunk_extent: tuple[int, ...]
    compressed: bool
    #: crc32 of the stored bytes; 0 for synthetic/no-verify chunks
    checksum: int = 0

    @property
    def selection(self) -> tuple[slice, ...]:
        """The chunk's slab within the variable's global shape."""
        return tuple(slice(o, o + x)
                     for o, x in zip(self.chunk_offset, self.chunk_extent))


class _SlotSpans:
    """Reserved in-place regions for a rewritable step, run-length-coded.

    One (offset, reserved) pair per subfile, but subfile loads come
    from integer spreads, so both vectors are piecewise-constant over
    the subfile index: a rewritable step's slot table encodes in a
    handful of segments instead of O(aggregators) objects per key —
    the difference between kilobytes and hundreds of megabytes when a
    long run touches many step keys at million-rank scale.
    """

    __slots__ = ("counts", "offsets", "reserved")

    def __init__(self, counts: np.ndarray, offsets: np.ndarray,
                 reserved: np.ndarray):
        self.counts = counts
        self.offsets = offsets
        self.reserved = reserved

    @classmethod
    def encode(cls, offsets: np.ndarray, reserved: np.ndarray) \
            -> "_SlotSpans":
        change = np.flatnonzero((np.diff(offsets) != 0)
                                | (np.diff(reserved) != 0))
        starts = np.concatenate(([0], change + 1))
        counts = np.diff(np.concatenate((starts, [len(offsets)])))
        return cls(counts, offsets[starts].copy(), reserved[starts].copy())

    def decode(self) -> tuple[np.ndarray, np.ndarray]:
        return (np.repeat(self.offsets, self.counts),
                np.repeat(self.reserved, self.counts))

    @property
    def nbytes(self) -> int:
        return (self.counts.nbytes + self.offsets.nbytes
                + self.reserved.nbytes)


class IntegrityError(RuntimeError):
    """Stored data failed its checksum (corrupt checkpoint/diagnostics).

    Carries structured ``context`` (path, rank, step, expected/actual
    checksum) so restart orchestration can report *what* was corrupt,
    not just that something was.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 rank: int | None = None, step: str | int | None = None,
                 expected: int | None = None, actual: int | None = None):
        super().__init__(message)
        self.context = {"path": path, "rank": rank, "step": step,
                        "expected": expected, "actual": actual}


class BPEngineBase:
    """Shared implementation of the BP-family file engines."""

    engine_type = "BP"
    extension = ".bp"
    extra_meta_files: tuple[str, ...] = ()
    #: engine-default staging bound (overridden per subclass); None =
    #: buffer the whole step (BP4)
    default_buffer_chunk: int | None = None
    #: BP5 ships chunks through a node-local shm funnel before the
    #: inter-node subfile shuffle; BP4/BP3 shuffle rank→owner directly
    two_level_shuffle: bool = False

    def __init__(self, posix: PosixIO, comm: VirtualComm, path: str,
                 mode: str = "w", config: EngineConfig | None = None):
        if mode not in ("w", "r", "a"):
            raise ValueError(f"unsupported engine mode {mode!r}")
        self.posix = posix
        self.comm = comm
        self.path = path if path.endswith(self.extension) else path + self.extension
        self.mode = mode
        self.config = config or EngineConfig()
        self.compressor: Compressor | None = (
            get_compressor(self.config.compressor)
            if self.config.compressor else None
        )
        if self.config.profile_granularity not in ("rank", "node"):
            raise ValueError(
                "profile_granularity must be 'rank' or 'node', got "
                f"{self.config.profile_granularity!r}")
        self.plan: AggregationPlan = plan_aggregation(
            comm, self.config.num_aggregators)
        self.profile = EngineProfile(
            comm.size, self.engine_type,
            bin_of_rank=(comm.node_of_rank
                         if self.config.profile_granularity == "node"
                         else None))
        # this engine's profiling.json is a fold over the event spine:
        # the engine emits typed events (scoped to itself, so two open
        # engines on one bus stay separate) and the fold accumulates
        self._trace_scope = f"{self.engine_type}:{self.path}"
        self._fold = ProfileFold(self.profile, scope=self._trace_scope)
        posix.trace.subscribe(self._fold)
        self._index: list[_IndexEntry] = []
        self._slots: dict[str, _SlotSpans] = {}
        self._subfile_tails = np.zeros(self.plan.num_aggregators, dtype=np.int64)
        m = self.plan.num_aggregators
        #: async-drain bookkeeping (virtual time the in-flight drain of
        #: each subfile completes, plus its batch schedule for residual
        #: host-memory accounting) — inert in sync mode
        self._drain_until = np.zeros(m, dtype=np.float64)
        self._drain_ends: list[np.ndarray] = [np.zeros(0)] * m
        self._drain_bytes: list[np.ndarray] = [np.zeros(0)] * m
        #: high-water resident staging bytes per subfile buffer
        self.peak_host_bytes = np.zeros(m, dtype=np.float64)
        #: per-rank seconds stalled waiting on an unfinished drain —
        #: only the async path writes it, so the sync path keeps an
        #: empty array instead of an O(ranks) block of zeros
        self.drain_wait_seconds = np.zeros(
            comm.size if self.config.async_drain else 0, dtype=np.float64)
        #: engine staging bytes ledger on the ambient memory budget
        self._mem_account = current_budget().account("engine")
        #: per-subfile seconds the background drain was busy
        self.drain_seconds = np.zeros(m, dtype=np.float64)
        self._step = -1
        self._in_step = False
        self._closed = False
        self._cur_vars: dict[str, Variable] = {}
        self._cur_bulk: list[tuple[str, np.ndarray, np.ndarray, str]] = []
        self._attributes: dict[str, Attribute] = {}
        if mode in ("w", "a"):
            self._create_layout(truncate=(mode == "w"))
        else:
            self._open_for_read()

    # -- layout ---------------------------------------------------------------

    def _subfile_path(self, i: int) -> str:
        return f"{self.path}/data.{i}"

    def _create_layout(self, truncate: bool) -> None:
        root_rank = 0
        if not self.posix.exists(self.path):
            self.posix.mkdir(root_rank, self.path, parents=True)
        m = self.plan.num_aggregators
        agg_ranks = self.plan.aggregator_ranks
        self._data_fds = self.posix.open_group(
            agg_ranks, [self._subfile_path(i) for i in range(m)],
            create=True, truncate=truncate,
        )
        self._md_fd = self.posix.open(root_rank, f"{self.path}/md.0",
                                      create=True, truncate=truncate)
        self._idx_fd = self.posix.open(root_rank, f"{self.path}/md.idx",
                                       create=True, truncate=truncate)
        self._extra_fds = {
            name: self.posix.open(root_rank, f"{self.path}/{name}",
                                  create=True, truncate=truncate)
            for name in self.extra_meta_files
        }
        if truncate:
            self._append_md(MD0_HEADER, real=self._header_json())
            self._append_idx(MDIDX_HEADER)

    def _header_json(self) -> bytes:
        head = {
            "engine": self.engine_type,
            "nranks": self.comm.size,
            "aggregators": int(self.plan.num_aggregators),
            "compressor": self.config.compressor,
        }
        return (json.dumps({"header": head}) + "\n").encode()

    def _attributes_json(self) -> bytes:
        doc = {"attributes": {name: attr.value
                              for name, attr in self._attributes.items()}}
        try:
            return (json.dumps(doc) + "\n").encode()
        except TypeError:  # non-JSON attribute values: store repr
            doc = {"attributes": {name: repr(attr.value)
                                  for name, attr in self._attributes.items()}}
            return (json.dumps(doc) + "\n").encode()

    def _append_md(self, nbytes_model: int, real: bytes | None = None) -> None:
        # metadata appends are buffered rank-0 stream writes, not part of
        # the contended data phase — cost them uncontended
        payload = (RealPayload(real, entropy="metadata") if real is not None
                   else SyntheticPayload(nbytes_model, "metadata"))
        with self.posix.phase(writers=1):
            self.posix.write(0, self._md_fd, payload, meta=True)
            for fd in getattr(self, "_extra_fds", {}).values():
                self.posix.write(0, fd, SyntheticPayload(
                    max(nbytes_model // 2, 16), "metadata"), meta=True)

    def _append_idx(self, nbytes: int) -> None:
        with self.posix.phase(writers=1):
            self.posix.write(0, self._idx_fd,
                             SyntheticPayload(nbytes, "metadata"), meta=True)

    # -- write-side API -----------------------------------------------------------

    def begin_step(self) -> int:
        self._check_writable()
        if self._in_step:
            raise RuntimeError("previous step not ended")
        self._step += 1
        self._in_step = True
        self._cur_vars = {}
        self._cur_bulk = []
        return self._step

    def define_attribute(self, name: str, value) -> Attribute:
        attr = Attribute(name, value)
        self._attributes[name] = attr
        return attr

    @property
    def attributes(self) -> dict:
        """Attribute values (write side: as defined; read side: loaded)."""
        return {name: attr.value for name, attr in self._attributes.items()}

    def declare_variable(self, name: str, dtype: str,
                         global_shape: tuple[int, ...],
                         entropy: str = "particle_float32") -> Variable:
        self._check_in_step()
        var = self._cur_vars.get(name)
        if var is None:
            var = Variable(name=name, dtype=dtype,
                           global_shape=tuple(global_shape), entropy=entropy)
            self._cur_vars[name] = var
        return var

    def put(self, name: str, dtype: str, global_shape: tuple[int, ...],
            rank: int, offset: tuple[int, ...], extent: tuple[int, ...],
            data, entropy: str = "particle_float32") -> Chunk:
        """Stage one rank's chunk (functional path)."""
        var = self.declare_variable(name, dtype, global_shape, entropy)
        return var.put_chunk(rank, tuple(offset), tuple(extent), data)

    def put_group(self, name: str, ranks: np.ndarray | None,
                  nbytes_each,
                  entropy: str = "particle_float32") -> None:
        """Stage symmetric synthetic chunks for many ranks (modeled path).

        ``ranks=None`` with a :class:`~repro.mem.SplitValues` spanning
        every rank stages the group as a compact descriptor — no
        O(ranks) array is retained, and a chunked flush materialises
        only one rank block at a time.
        """
        self._check_in_step()
        if ranks is None:
            if not isinstance(nbytes_each, SplitValues):
                raise TypeError(
                    "ranks=None requires a SplitValues byte descriptor")
            if len(nbytes_each) != self.comm.size:
                raise ValueError(
                    f"span covers {len(nbytes_each)} ranks, "
                    f"comm has {self.comm.size}")
            self._cur_bulk.append((name, None, nbytes_each, entropy))
            return
        ranks = np.asarray(ranks)
        nbytes = np.broadcast_to(
            np.asarray(nbytes_each, dtype=np.int64), ranks.shape).copy()
        self._cur_bulk.append((name, ranks, nbytes, entropy))

    # -- flush ------------------------------------------------------------------------

    def end_step(self, overwrite_key: str | None = None) -> None:
        """Flush the step; ``overwrite_key`` names a rewritable slot.

        Passing the same key again overwrites the earlier step's extents
        in place — the paper's "iteration 0 is chosen to record data that
        is periodically overwritten" checkpoint pattern.
        """
        self._check_in_step()
        with self.posix.trace.scope(self._trace_scope):
            self._flush_step(overwrite_key)
        self._in_step = False
        self.comm.barrier()

    def _flush_step(self, overwrite_key: str | None) -> None:
        """The staged→shuffled→written pipeline, inside the trace scope.

        All accounting here goes through the event spine: stage copies
        emit ``memcpy``/``compress``, the aggregator shuffle emits
        ``shuffle``, and the subfile flushes emit ``collective_write``
        from inside :meth:`~repro.fs.posix.PosixIO.write_aggregate`.
        ``self.profile`` is one subscriber folding them back.
        """
        n = self.comm.size
        block = self.config.rank_block_size
        # chunk-evaluate only when every staged byte is a span descriptor;
        # declared-but-chunkless variables (the usual series metadata
        # declarations) contribute exact zeros either way
        if (block is not None and block < n
                and all(not v.chunks for v in self._cur_vars.values())
                and all(r is None for _nm, r, _b, _e in self._cur_bulk)):
            per_agg = self._flush_blocked(block)
        else:
            staged = np.zeros(n, dtype=np.float64)
            for var in self._cur_vars.values():
                staged += var.per_rank_bytes(n)
            for _name, ranks, nbytes, _entropy in self._cur_bulk:
                if ranks is None:
                    staged += nbytes.slice(0, n).astype(np.float64)
                else:
                    scatter_add(staged, ranks, nbytes.astype(np.float64))

            stored = self._apply_operator(staged)
            gather_fn = (two_level_gather_cost if self.two_level_shuffle
                         else gather_cost_seconds)
            gather = gather_fn(self.plan, stored, self.comm)
            self.comm.clocks += gather
            self._emit("shuffle", np.arange(n), stored, gather)
            per_agg = self.plan.per_aggregator_bytes(stored)
        staged_resident = int(per_agg.sum())
        self._mem_account.charge(staged_resident)
        offsets = self._allocate(overwrite_key, per_agg)
        active = per_agg > 0
        agg_ranks = self.plan.aggregator_ranks
        if active.any():
            if self.config.async_drain:
                self._drain_async(per_agg, offsets, active)
            else:
                self.peak_host_bytes = np.maximum(
                    self.peak_host_bytes, per_agg)
                bound = (self.config.buffer_chunk_size
                         or self.default_buffer_chunk)
                if bound is not None and int(per_agg[active].max()) > bound:
                    # memory-bounded staging (BP5): drain the buffer in
                    # bounded batches -- more, smaller collective writes
                    remaining = per_agg[active].astype(np.int64).copy()
                    offs = offsets[active].astype(np.int64).copy()
                    while (remaining > 0).any():
                        batch = np.minimum(remaining, bound)
                        live = batch > 0
                        self.posix.write_aggregate(
                            agg_ranks[active][live],
                            self._data_fds[active][live],
                            batch[live], overwrite_offset=offs[live],
                        )
                        offs += batch
                        remaining -= batch
                else:
                    self.posix.write_aggregate(
                        agg_ranks[active], self._data_fds[active],
                        per_agg[active], overwrite_offset=offsets[active],
                    )
        self._materialize_chunks(offsets)
        self._write_step_metadata(overwrite_key)
        self._mem_account.release(staged_resident)
        self.profile.steps += 1

    def _stored_block(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Staged and post-operator bytes for ranks ``[lo, hi)``.

        Recomputed per pass from the span descriptors (cheaper than
        retaining O(ranks) arrays); values are identical to the slices
        the unchunked path would take of its whole-job arrays.
        """
        staged = np.zeros(hi - lo, dtype=np.float64)
        for _name, _ranks, sv, _entropy in self._cur_bulk:
            staged += sv.slice(lo, hi).astype(np.float64)
        if self.compressor is None:
            return staged, staged
        stored = np.zeros(hi - lo, dtype=np.float64)
        for _name, _ranks, sv, entropy in self._cur_bulk:
            ratio = self.compressor.synthetic_ratio(entropy)
            stored += np.round(sv.slice(lo, hi).astype(np.float64) * ratio)
        return staged, stored

    def _flush_blocked(self, block: int) -> np.ndarray:
        """Stage/operate/shuffle in rank blocks; returns per-subfile bytes.

        Bit-identical to the unchunked pipeline (see
        :class:`~repro.adios2.aggregation.BlockedShuffle` for the
        exactness argument) while touching O(block) ranks at a time.
        Each rank's clock receives the same per-step additions in the
        same order: operator cost, then its sender leg (owners get an
        exact ``+0.0`` here), then — owners only — one receiver-side
        add at the end.
        """
        n = self.comm.size
        shuffle = BlockedShuffle(self.plan, self.comm, block,
                                 two_level=self.two_level_shuffle)
        windows = [(lo, min(n, lo + block)) for lo in range(0, n, block)]
        for lo, hi in windows:
            _staged, stored = self._stored_block(lo, hi)
            shuffle.prepare(lo, hi, stored)
        for lo, hi in windows:
            staged, stored = self._stored_block(lo, hi)
            ranks = np.arange(lo, hi)
            if self.compressor is None:
                op_s = staged / self.config.memcpy_bandwidth
                self.comm.clocks[lo:hi] += op_s
                self._emit("memcpy", ranks, staged, op_s)
            else:
                op_s = staged / self.compressor.compress_bandwidth
                self.comm.clocks[lo:hi] += op_s
                self._emit("compress", ranks, staged, op_s)
            send = shuffle.send_legs(lo, hi, stored)
            self.comm.clocks[lo:hi] += send
            self._emit("shuffle", ranks, stored, send)
        if shuffle.needs_local_pass:
            for lo, hi in windows:
                _staged, stored = self._stored_block(lo, hi)
                shuffle.local_recv(lo, hi, stored)
        owner_ranks, recv = shuffle.finish()
        self.comm.clocks[owner_ranks] += recv
        self._emit("shuffle", owner_ranks, np.zeros(len(owner_ranks)), recv)
        return shuffle.per_agg

    def _drain_async(self, per_agg: np.ndarray, offsets: np.ndarray,
                     active: np.ndarray) -> None:
        """Schedule this step's subfile writes as a background drain.

        BP5 ``AsyncWrite`` semantics in virtual time: ``end_step``
        returns once the shuffle lands the buffers on the aggregators;
        the collective writes are costed *now* (identical batches, RNG
        draws and Darshan durations as the sync path) but stamped at
        their scheduled future start times, and only ``_drain_until``
        remembers when each subfile's drain completes.  Double-buffered:
        a flush that arrives before the previous drain of its subfile
        finished stalls the owner (``drain_wait``) until it has.
        """
        act = np.nonzero(active)[0]
        own = self.plan.aggregator_ranks[act]
        clocks = self.comm.clocks
        entry = clocks[own].copy()

        # residual bytes of the previous drain still resident at entry:
        # the old and new buffer coexist until the old one finishes
        residual = np.zeros(len(act), dtype=np.float64)
        for j, i in enumerate(act):
            ends = self._drain_ends[i]
            if len(ends):
                residual[j] = self._drain_bytes[i][ends > entry[j]].sum()
        peak = per_agg[act] + residual
        bound_bytes = self.config.host_memory_bound
        if bound_bytes is not None:
            # Put() blocks until the old buffer drains below the bound,
            # so residency is capped while total wait time is unchanged
            peak = np.minimum(peak, np.maximum(bound_bytes, per_agg[act]))
        self.peak_host_bytes[act] = np.maximum(self.peak_host_bytes[act],
                                               peak)

        wait = np.maximum(self._drain_until[act] - entry, 0.0)
        stalled = wait > 0
        if stalled.any():
            scatter_add(clocks, own[stalled], wait[stalled])
            scatter_add(self.drain_wait_seconds, own[stalled], wait[stalled])
            self._emit("drain_wait", own[stalled],
                       np.zeros(int(stalled.sum())), wait[stalled])

        begin = clocks[own].copy()
        starts = begin.copy()
        bound = self.config.buffer_chunk_size or self.default_buffer_chunk
        sched_ends: list[list[float]] = [[] for _ in act]
        sched_bytes: list[list[float]] = [[] for _ in act]
        fds = self._data_fds[act]
        if bound is not None and int(per_agg[act].max()) > bound:
            remaining = per_agg[act].astype(np.int64).copy()
            offs = offsets[act].astype(np.int64).copy()
            while (remaining > 0).any():
                batch = np.minimum(remaining, bound)
                live = batch > 0
                costs = self.posix.write_aggregate(
                    own[live], fds[live], batch[live],
                    overwrite_offset=offs[live],
                    charge_clocks=False, start_at=starts[live],
                )
                starts[live] += costs
                for j in np.nonzero(live)[0]:
                    sched_ends[j].append(float(starts[j]))
                    sched_bytes[j].append(float(batch[j]))
                offs += batch
                remaining -= batch
        else:
            costs = self.posix.write_aggregate(
                own, fds, per_agg[act], overwrite_offset=offsets[act],
                charge_clocks=False, start_at=starts,
            )
            starts = starts + costs
            for j in range(len(act)):
                sched_ends[j].append(float(starts[j]))
                sched_bytes[j].append(float(per_agg[act][j]))

        self._drain_until[act] = starts
        self.drain_seconds[act] += starts - begin
        for j, i in enumerate(act):
            self._drain_ends[i] = np.asarray(sched_ends[j])
            self._drain_bytes[i] = np.asarray(sched_bytes[j])
        bus = self.posix.trace
        if bus.wants("drain"):
            # explicit future start: _emit would back-date from the
            # owner clocks, which the drain deliberately did not advance
            bus.emit("drain", own, nbytes=per_agg[act].astype(np.float64),
                     duration=starts - begin, start=begin,
                     api="ENGINE", layer="engine")

    def _settle_drains(self) -> None:
        """Block until every in-flight drain completes (close barrier).

        An owner adopting several subfiles waits for the *latest* of its
        drains; the stall is charged and emitted like any other
        ``drain_wait``.
        """
        if not self.config.async_drain:
            return
        owners = self.plan.aggregator_ranks
        clocks = self.comm.clocks
        target = np.zeros(self.comm.size, dtype=np.float64)
        np.maximum.at(target, owners, self._drain_until)
        ranks = np.unique(owners)
        wait = np.maximum(target[ranks] - clocks[ranks], 0.0)
        stalled = wait > 0
        if stalled.any():
            clocks[ranks[stalled]] += wait[stalled]
            self.drain_wait_seconds[ranks[stalled]] += wait[stalled]
            self._emit("drain_wait", ranks[stalled],
                       np.zeros(int(stalled.sum())), wait[stalled])
        self._drain_until[:] = 0.0

    def _emit(self, kind: str, ranks: np.ndarray, nbytes, seconds) -> None:
        """Emit one engine-plane event (clocks already charged)."""
        bus = self.posix.trace
        if bus.wants(kind):
            bus.emit(kind, ranks, nbytes=nbytes, duration=seconds,
                     start=self.comm.clocks[ranks] - seconds,
                     api="ENGINE", layer="engine")

    def _apply_operator(self, staged: np.ndarray) -> np.ndarray:
        """Compression / memcpy accounting; returns stored bytes per rank."""
        n = self.comm.size
        ranks = np.arange(n)
        if self.compressor is None:
            memcpy_s = staged / self.config.memcpy_bandwidth
            self.comm.clocks += memcpy_s
            self._emit("memcpy", ranks, staged, memcpy_s)
            # real chunks are stored as-is
            for var in self._cur_vars.values():
                for chunk in var.chunks:
                    chunk.stored = chunk.payload  # type: ignore[attr-defined]
                    chunk.stored_compressed = False  # type: ignore[attr-defined]
            return staged.copy()
        cpu_s = staged / self.compressor.compress_bandwidth
        self.comm.clocks += cpu_s
        self._emit("compress", ranks, staged, cpu_s)
        stored = np.zeros(n, dtype=np.float64)
        for var in self._cur_vars.values():
            for chunk in var.chunks:
                result = self.compressor.compress(chunk.payload)
                chunk.stored = result.payload  # type: ignore[attr-defined]
                chunk.stored_compressed = True  # type: ignore[attr-defined]
                stored[chunk.rank] += result.compressed_nbytes
        for name, ranks_b, nbytes, entropy in self._cur_bulk:
            ratio = self.compressor.synthetic_ratio(entropy)
            if ranks_b is None:
                stored += np.round(nbytes.slice(0, n).astype(np.float64)
                                   * ratio)
            else:
                scatter_add(stored, ranks_b, np.round(nbytes * ratio))
        return stored

    def _allocate(self, key: str | None, per_agg: np.ndarray) -> np.ndarray:
        """Subfile offsets for this step's blocks (append or in-place)."""
        m = self.plan.num_aggregators
        offsets = np.empty(m, dtype=np.int64)
        if key is None:
            offsets[:] = self._subfile_tails
            self._subfile_tails += per_agg
            return offsets
        slots = self._slots.get(key)
        if slots is None:
            offsets[:] = self._subfile_tails
            self._subfile_tails += per_agg
            self._store_slots(key, offsets, per_agg)
            return offsets
        off, res = slots.decode()
        grow = np.asarray(per_agg, dtype=np.int64) > res
        offsets[:] = off  # in-place overwrite where the step still fits
        if grow.any():
            offsets[grow] = self._subfile_tails[grow]
            self._subfile_tails[grow] += per_agg[grow]
            off[grow] = offsets[grow]
            res[grow] = per_agg[grow]
            self._store_slots(key, off, res)
        return offsets

    def _store_slots(self, key: str, offsets: np.ndarray,
                     reserved: np.ndarray) -> None:
        old = self._slots.get(key)
        spans = _SlotSpans.encode(np.asarray(offsets, dtype=np.int64),
                                  np.asarray(reserved, dtype=np.int64))
        self._slots[key] = spans
        if old is not None:
            self._mem_account.release(old.nbytes)
        self._mem_account.charge(spans.nbytes)

    def _materialize_chunks(self, agg_offsets: np.ndarray) -> None:
        """Lay real chunk bytes into the subfiles and index them."""
        if not self._cur_vars:
            return
        cursor = agg_offsets.astype(np.int64).copy()
        vfs = self.posix.fs.vfs
        step_key = f"step{self._step}"
        for name in sorted(self._cur_vars):
            var = self._cur_vars[name]
            for chunk in var.chunks:
                stored = getattr(chunk, "stored", chunk.payload)
                sub = int(self.plan.agg_index_of_rank[chunk.rank])
                off = int(cursor[sub])
                checksum = 0
                if isinstance(stored, RealPayload):
                    blob = stored.tobytes()
                    checksum = zlib.crc32(blob)
                    ino = vfs.lookup(self._subfile_path(sub))
                    vfs.write_content(ino, off, blob)
                self._index.append(_IndexEntry(
                    step_key=step_key,
                    var=name,
                    dtype=var.dtype,
                    rank=chunk.rank,
                    subfile=sub,
                    offset=off,
                    stored_nbytes=stored.nbytes,
                    raw_nbytes=chunk.nbytes,
                    global_shape=var.global_shape,
                    chunk_offset=chunk.offset,
                    chunk_extent=chunk.extent,
                    compressed=bool(getattr(chunk, "stored_compressed", False)),
                    checksum=checksum,
                ))
                cursor[sub] += stored.nbytes

    def _write_step_metadata(self, overwrite_key: str | None) -> None:
        n_entries = sum(len(v.chunks) for v in self._cur_vars.values())
        if n_entries:
            lines = []
            start = len(self._index) - n_entries
            for e in self._index[start:]:
                d = vars(e).copy()
                d["global_shape"] = list(e.global_shape)
                d["chunk_offset"] = list(e.chunk_offset)
                d["chunk_extent"] = list(e.chunk_extent)
                lines.append(json.dumps(d))
            self._append_md(0, real=("\n".join(lines) + "\n").encode())
        else:
            self._append_md(
                MD0_STEP_BASE + MD0_PER_AGG * self.plan.num_aggregators)
        self._append_idx(MDIDX_PER_STEP)

    # -- read-side API ------------------------------------------------------------------

    def _open_for_read(self) -> None:
        self._data_fds = np.zeros(0, dtype=np.int64)
        md_fd = self.posix.open(0, f"{self.path}/md.0")
        size = self.posix.fs.vfs.size_of(self.posix._fds[md_fd].ino)
        blob = self.posix.read(0, md_fd, size)
        self.posix.close(0, md_fd)
        for line in blob.decode(errors="ignore").splitlines():
            line = line.strip().rstrip("\x00")
            if not line or not line.startswith("{"):
                continue
            d = json.loads(line)
            if "header" in d:
                continue
            if "attributes" in d:
                for name, value in d["attributes"].items():
                    self._attributes[name] = Attribute(name, value)
                continue
            d["global_shape"] = tuple(d["global_shape"])
            d["chunk_offset"] = tuple(d["chunk_offset"])
            d["chunk_extent"] = tuple(d["chunk_extent"])
            self._index.append(_IndexEntry(**d))

    def available_variables(self) -> dict[str, list[str]]:
        """Map variable name → step keys in which it appears."""
        out: dict[str, list[str]] = {}
        for e in self._index:
            out.setdefault(e.var, [])
            if e.step_key not in out[e.var]:
                out[e.var].append(e.step_key)
        return out

    def chunk_entries(self, name: str,
                      step_key: str | None = None) -> list[_IndexEntry]:
        """The stored chunks assembling one variable, in index order.

        ``step_key=None`` selects the latest version — which, for
        overwritten checkpoint steps, is the most recent rewrite.  This
        is the chunk-granular request surface the serving plane's cache
        keys and prefetches over.
        """
        entries = [e for e in self._index if e.var == name]
        if step_key is not None:
            entries = [e for e in entries if e.step_key == step_key]
        if not entries:
            raise KeyError(f"no stored chunks for variable {name!r}"
                           + (f" at {step_key!r}" if step_key else ""))
        last_key = entries[-1].step_key
        return [e for e in entries if e.step_key == last_key]

    def read_chunk(self, e: _IndexEntry, rank: int = 0) -> np.ndarray:
        """Read, verify and decode one stored chunk (functional mode).

        Charges ``rank`` the chunk's modeled read cost and emits the
        posix-layer ``read`` event; ``e.selection`` places the returned
        array in the variable's global shape.
        """
        vfs = self.posix.fs.vfs
        ino = vfs.lookup(self._subfile_path(e.subfile))
        raw = vfs.read(ino, e.offset, e.stored_nbytes)
        if e.checksum and zlib.crc32(raw) != e.checksum:
            raise IntegrityError(
                f"checksum mismatch reading {e.var!r} "
                f"(subfile data.{e.subfile} @ {e.offset}): the "
                f"checkpoint is corrupt",
                path=self._subfile_path(e.subfile), rank=e.rank,
                step=e.step_key, expected=e.checksum,
                actual=zlib.crc32(raw))
        cost = float(self.posix.fs.perf.read_op_cost(e.stored_nbytes))
        self.posix._charge(rank, cost)
        self.posix._notify("read", rank, e.stored_nbytes, cost, "POSIX",
                           inos=ino)
        if e.compressed:
            codec = self.compressor or get_compressor("blosc")
            raw = codec.decompress_bytes(raw)
        arr = np.frombuffer(raw[: e.raw_nbytes], dtype=_numpy_dtype(e.dtype))
        return arr.reshape(e.chunk_extent)

    def get(self, name: str, step_key: str | None = None,
            rank: int = 0) -> np.ndarray:
        """Assemble a variable from its chunks (functional mode)."""
        entries = self.chunk_entries(name, step_key)
        dtype = _numpy_dtype(entries[0].dtype)
        out = np.zeros(entries[0].global_shape, dtype=dtype)
        for e in entries:
            out[e.selection] = self.read_chunk(e, rank)
        return out

    # -- fault plane --------------------------------------------------------------------

    def handle_rank_failure(self, dead_ranks) -> None:
        """Fail this engine's subfiles over when aggregator ranks die.

        Survivor aggregators adopt the dead owners' subfiles (same fds,
        same on-disk layout); subsequent flushes charge the doubled-up
        survivors, reproducing the post-failover bandwidth skew.  Emits
        one ``failover`` event per adopted subfile.
        """
        if self.mode == "r" or self._closed:
            return
        new_plan = self.plan.failover(dead_ranks)
        if new_plan is self.plan:
            return
        changed = np.nonzero(
            new_plan.aggregator_ranks != self.plan.aggregator_ranks)[0]
        bus = self.posix.trace
        if bus.wants("failover"):
            ranks = new_plan.aggregator_ranks[changed]
            bus.emit("failover", ranks,
                     start=self.comm.clocks[ranks],
                     api="AGG", layer="faults",
                     inos=self.posix._fd_ino[self._data_fds[changed]])
        self.plan = new_plan

    def abandon(self) -> None:
        """Drop the engine as a crashed process would: no closing I/O.

        Descriptors are reaped without metadata cost and the profile fold
        is unsubscribed; whatever was flushed stays on disk exactly as
        the crash left it (``md.0`` is JSON-lines appended per step, so
        it stays readable up to the last completed flush).
        """
        if self._closed:
            return
        # a crashed process's drain thread dies with it: pending drains
        # are dropped, nobody waits on them
        self._drain_until[:] = 0.0
        if len(self._data_fds):
            self.posix.release_fds(self._data_fds)
        for attr in ("_md_fd", "_idx_fd"):
            fd = getattr(self, attr, None)
            if fd is not None:
                self.posix.release_fds(fd)
        for fd in getattr(self, "_extra_fds", {}).values():
            self.posix.release_fds(fd)
        self.posix.trace.unsubscribe(self._fold)
        self._in_step = False
        self._closed = True

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        if self._in_step:
            raise RuntimeError("cannot close an engine mid-step")
        if self.mode in ("w", "a"):
            with self.posix.trace.scope(self._trace_scope):
                self._settle_drains()
            if self._attributes:
                self._append_md(0, real=self._attributes_json())
            if self.config.profiling:
                fd = self.posix.open(0, f"{self.path}/profiling.json",
                                     create=True, truncate=True)
                self.posix.write(0, fd, RealPayload(
                    self.profile.to_json().encode(), entropy="metadata"))
                self.posix.close(0, fd)
            self.posix.close_group(self.plan.aggregator_ranks, self._data_fds)
            self.posix.close(0, self._md_fd)
            self.posix.close(0, self._idx_fd)
            for fd in self._extra_fds.values():
                self.posix.close(0, fd)
        self.posix.trace.unsubscribe(self._fold)
        self._closed = True

    # -- guards --------------------------------------------------------------------------

    def _check_writable(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed")
        if self.mode == "r":
            raise RuntimeError("engine opened read-only")

    def _check_in_step(self) -> None:
        self._check_writable()
        if not self._in_step:
            raise RuntimeError("call begin_step() first")

    def __enter__(self) -> "BPEngineBase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _numpy_dtype(adios_name: str) -> np.dtype:
    table = {"float": np.float32, "double": np.float64,
             "int32_t": np.int32, "int64_t": np.int64,
             "uint64_t": np.uint64, "uint8_t": np.uint8}
    return np.dtype(table[adios_name])
