"""The BP5 engine: BP4's layout plus a second metadata file ``mmd.0``.

"However, for BP5, there is a second metadata file (mmd.0) in the
directory, which BP4 and BP3 do not have" (§III-D).  BP5 trades some of
BP4's aggressive buffering for bounded host memory; modelled here as a
smaller default staging granularity.
"""

from __future__ import annotations

from repro.adios2.engine import BPEngineBase


class BP5Engine(BPEngineBase):
    """ADIOS2 BP5 file engine (``*.bp5`` directory, with ``mmd.0``)."""

    engine_type = "BP5"
    extension = ".bp5"
    extra_meta_files: tuple[str, ...] = ("mmd.0",)
    #: BP5 bounds host memory: stage at most 16 MiB per aggregator before
    #: draining ("certain compromises to exert tighter control over the
    #: host memory usage", §II-A)
    default_buffer_chunk: int | None = 16 * 1024 * 1024
    #: BP5 aggregates in two levels: ranks funnel through a node-local
    #: shared-memory segment, then node leaders ship one consolidated
    #: message per destination subfile over the NIC
    two_level_shuffle: bool = True
