"""ADIOS2 engine profiling — the ``profiling.json`` transport report.

Setting ``OPENPMD_ADIOS2_HAVE_PROFILING=1`` makes ADIOS2 drop a
``profiling.json`` into the output directory with per-rank transport
timings.  The paper's Fig. 8 reads the *memory copy* times out of this
file and shows them "entirely eliminated" when Blosc compression is on —
because the compressor emits straight into the staging buffer instead of
a staging memcpy.

The reproduction tracks, per rank, microseconds spent in:

* ``memcpy`` — staging copies of uncompressed puts;
* ``compress`` — operator CPU time;
* ``aggregation`` — shuffling chunks to aggregator ranks;
* ``write`` — POSIX write calls issued by aggregators;
* ``meta`` — metadata/index maintenance.
"""

from __future__ import annotations

import json

import numpy as np

from repro.trace.events import IOEvent, make_event

PROFILE_CATEGORIES = ("memcpy", "compress", "aggregation", "write", "meta")

#: spine event kind -> profiling.json category
KIND_TO_CATEGORY = {
    "memcpy": "memcpy",
    "compress": "compress",
    "shuffle": "aggregation",
    "collective_write": "write",
    "meta_append": "meta",
}
_CATEGORY_TO_KIND = {v: k for k, v in KIND_TO_CATEGORY.items()}

#: kinds whose payload counts toward ``bytes_put`` (the staging volume)
_STAGING_KINDS = frozenset({"memcpy", "compress"})


class EngineProfile:
    """Columnar per-rank microsecond counters for one engine.

    Since the ``repro.trace`` refactor this class holds no timing
    arithmetic of its own: every counter is folded from spine events in
    :meth:`fold_event` (the ``add``/``add_bytes`` entry points wrap
    their arguments in synthetic events and fold those).
    """

    def __init__(self, nranks: int, engine_type: str = "BP4",
                 bin_of_rank=None):
        self.nranks = nranks
        self.engine_type = engine_type
        #: optional rank→bin map (e.g. ``comm.node_of_rank``): counters
        #: are then O(bins) resident instead of O(ranks) — the memory
        #: plane's node-granularity profiling for million-rank jobs
        # lazy maps (BlockNodeMap) pass through un-materialised:
        # indexing is all the fold needs
        self.bin_of_rank = bin_of_rank if (
            bin_of_rank is None or hasattr(bin_of_rank, "max")) \
            else np.asarray(bin_of_rank)
        self.nbins = nranks if self.bin_of_rank is None \
            else int(self.bin_of_rank.max()) + 1
        self.us = {c: np.zeros(self.nbins, dtype=np.float64)
                   for c in PROFILE_CATEGORIES}
        self.bytes_put = np.zeros(self.nbins, dtype=np.float64)
        self.steps = 0

    def fold_event(self, event: IOEvent) -> None:
        """Fold one engine-plane spine event into the counters."""
        category = KIND_TO_CATEGORY.get(event.kind)
        if category is None:
            return
        ranks = event.ranks
        if self.bin_of_rank is not None:
            ranks = self.bin_of_rank[np.asarray(ranks)]
        np.add.at(self.us[category], ranks, event.duration * 1e6)
        if event.kind in _STAGING_KINDS:
            np.add.at(self.bytes_put, ranks, event.nbytes)

    @classmethod
    def from_events(cls, events, nranks: int, engine_type: str = "TRACE",
                    scope: str | None = None) -> "EngineProfile":
        """Rebuild a profile offline from a recorded event stream.

        Applies the same kind filter and scope matching as the live
        :class:`~repro.trace.subscribers.ProfileFold`, so a profile
        derived after the fact is identical to the one folded in-run.
        """
        from repro.trace.subscribers import ProfileFold
        profile = cls(nranks, engine_type)
        fold = ProfileFold(profile, scope=scope)
        for event in events:
            if event.kind in fold.kinds:
                fold.on_event(event)
        return profile

    def add(self, category: str, ranks, seconds) -> None:
        """Accumulate seconds (converted to µs) for one or many ranks."""
        if category not in self.us:
            raise KeyError(f"unknown profile category {category!r}")
        self.fold_event(make_event(_CATEGORY_TO_KIND[category], ranks,
                                   duration=seconds, layer="engine",
                                   api="ENGINE"))

    def add_bytes(self, ranks, nbytes) -> None:
        # a zero-duration staging event: contributes bytes_put only
        self.fold_event(make_event("memcpy", ranks, nbytes=nbytes,
                                   layer="engine", api="ENGINE"))

    def total_us(self, category: str) -> float:
        return float(self.us[category].sum())

    def mean_us(self, category: str) -> float:
        return float(self.us[category].mean())

    def to_json(self) -> str:
        """Render in the spirit of ADIOS2's profiling.json (rank records)."""
        # summarise instead of dumping 25600 rank dicts: quartiles + totals
        records = {
            "engine": self.engine_type,
            "nranks": self.nranks,
            "steps": self.steps,
            "bytes_put_total": float(self.bytes_put.sum()),
            "transports": [],
        }
        if self.bin_of_rank is not None:
            records["granularity"] = "node"
            records["nbins"] = self.nbins
        for cat in PROFILE_CATEGORIES:
            arr = self.us[cat]
            records["transports"].append({
                "category": cat,
                "total_us": float(arr.sum()),
                "mean_us": float(arr.mean()),
                "max_us": float(arr.max()),
                "p50_us": float(np.percentile(arr, 50)),
                "p95_us": float(np.percentile(arr, 95)),
            })
        return json.dumps(records, indent=2)

    @property
    def json_nbytes(self) -> int:
        return len(self.to_json().encode())
