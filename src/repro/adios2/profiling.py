"""ADIOS2 engine profiling — the ``profiling.json`` transport report.

Setting ``OPENPMD_ADIOS2_HAVE_PROFILING=1`` makes ADIOS2 drop a
``profiling.json`` into the output directory with per-rank transport
timings.  The paper's Fig. 8 reads the *memory copy* times out of this
file and shows them "entirely eliminated" when Blosc compression is on —
because the compressor emits straight into the staging buffer instead of
a staging memcpy.

The reproduction tracks, per rank, microseconds spent in:

* ``memcpy`` — staging copies of uncompressed puts;
* ``compress`` — operator CPU time;
* ``aggregation`` — shuffling chunks to aggregator ranks;
* ``write`` — POSIX write calls issued by aggregators;
* ``meta`` — metadata/index maintenance.
"""

from __future__ import annotations

import json

import numpy as np

PROFILE_CATEGORIES = ("memcpy", "compress", "aggregation", "write", "meta")


class EngineProfile:
    """Columnar per-rank microsecond counters for one engine."""

    def __init__(self, nranks: int, engine_type: str = "BP4"):
        self.nranks = nranks
        self.engine_type = engine_type
        self.us = {c: np.zeros(nranks, dtype=np.float64)
                   for c in PROFILE_CATEGORIES}
        self.bytes_put = np.zeros(nranks, dtype=np.float64)
        self.steps = 0

    def add(self, category: str, ranks, seconds) -> None:
        """Accumulate seconds (converted to µs) for one or many ranks."""
        if category not in self.us:
            raise KeyError(f"unknown profile category {category!r}")
        ranks = np.atleast_1d(np.asarray(ranks))
        us = np.broadcast_to(np.asarray(seconds, dtype=np.float64) * 1e6,
                             ranks.shape)
        np.add.at(self.us[category], ranks, us)

    def add_bytes(self, ranks, nbytes) -> None:
        ranks = np.atleast_1d(np.asarray(ranks))
        vals = np.broadcast_to(np.asarray(nbytes, dtype=np.float64), ranks.shape)
        np.add.at(self.bytes_put, ranks, vals)

    def total_us(self, category: str) -> float:
        return float(self.us[category].sum())

    def mean_us(self, category: str) -> float:
        return float(self.us[category].mean())

    def to_json(self) -> str:
        """Render in the spirit of ADIOS2's profiling.json (rank records)."""
        # summarise instead of dumping 25600 rank dicts: quartiles + totals
        records = {
            "engine": self.engine_type,
            "nranks": self.nranks,
            "steps": self.steps,
            "bytes_put_total": float(self.bytes_put.sum()),
            "transports": [],
        }
        for cat in PROFILE_CATEGORIES:
            arr = self.us[cat]
            records["transports"].append({
                "category": cat,
                "total_us": float(arr.sum()),
                "mean_us": float(arr.mean()),
                "max_us": float(arr.max()),
                "p50_us": float(np.percentile(arr, 50)),
                "p95_us": float(np.percentile(arr, 95)),
            })
        return json.dumps(records, indent=2)

    @property
    def json_nbytes(self) -> int:
        return len(self.to_json().encode())
