"""ADIOS2-like I/O framework: BP engines, aggregation, operators, profiling."""

from repro.adios2.aggregation import (
    AggregationPlan,
    gather_cost_seconds,
    plan_aggregation,
    two_level_gather_cost,
)
from repro.adios2.bp4 import BP3Engine, BP4Engine
from repro.adios2.bp5 import BP5Engine
from repro.adios2.engine import BPEngineBase, EngineConfig, IntegrityError
from repro.adios2.profiling import PROFILE_CATEGORIES, EngineProfile
from repro.adios2.sst import (
    SSTEngine,
    SSTReader,
    StagingBackpressure,
    StepData,
    StepStatus,
    StreamRegistry,
    assemble_variable,
    open_streams,
    reset_streams,
)
from repro.adios2.variables import Attribute, Chunk, Variable, dtype_name, element_size

#: file extension → engine class ("The file's extension dictates the
#: engine used by openPMD for data storage", §III-B)
ENGINES_BY_EXTENSION = {
    ".bp": BP4Engine,
    ".bp3": BP3Engine,
    ".bp4": BP4Engine,
    ".bp5": BP5Engine,
}


def engine_for_path(path: str):
    """Select the engine class from the output path's extension."""
    for ext, cls in sorted(ENGINES_BY_EXTENSION.items(), key=lambda kv: -len(kv[0])):
        if path.endswith(ext):
            return cls
    raise ValueError(
        f"no ADIOS2 engine for {path!r}; "
        f"known extensions: {sorted(ENGINES_BY_EXTENSION)}"
    )


__all__ = [
    "ENGINES_BY_EXTENSION",
    "PROFILE_CATEGORIES",
    "AggregationPlan",
    "Attribute",
    "BP3Engine",
    "BP4Engine",
    "BP5Engine",
    "BPEngineBase",
    "Chunk",
    "SSTEngine",
    "SSTReader",
    "StagingBackpressure",
    "StepData",
    "StepStatus",
    "StreamRegistry",
    "assemble_variable",
    "EngineConfig",
    "EngineProfile",
    "IntegrityError",
    "Variable",
    "dtype_name",
    "element_size",
    "engine_for_path",
    "gather_cost_seconds",
    "open_streams",
    "plan_aggregation",
    "reset_streams",
    "two_level_gather_cost",
]
