"""The BP4 engine — the paper's workhorse backend.

"BP4 prioritizes I/O efficiency at a large scale through aggressive
optimization, while BP5 incorporates certain compromises to exert tighter
control over the host memory usage" (§II-A).  In this reproduction the
BP4/BP5 split matches the paper's observable differences: the directory
layout (BP5 adds ``mmd.0``) and BP5's smaller staging buffers (more,
smaller flush batches → slightly more metadata traffic).
"""

from __future__ import annotations

from repro.adios2.engine import BPEngineBase


class BP4Engine(BPEngineBase):
    """ADIOS2 BP4 file engine (``*.bp4`` directory)."""

    engine_type = "BP4"
    extension = ".bp4"
    extra_meta_files: tuple[str, ...] = ()


class BP3Engine(BPEngineBase):
    """Legacy BP3 layout (kept for the extension table; same md set)."""

    engine_type = "BP3"
    extension = ".bp3"
    extra_meta_files: tuple[str, ...] = ()
