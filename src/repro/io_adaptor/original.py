"""BIT1's original file I/O: per-rank stdio files, formatted text, fsync.

The baseline the paper measures first (§IV, Figs. 2-5): every rank owns
a diagnostics file (``*.dat``) and a checkpoint file (``*.dmp``) plus six
global files maintained by rank 0.  Output goes through buffered stdio;
checkpoint chunks are fsynced for crash safety (the conservative pattern
whose metadata cost Darshan exposes — 17.868 s/process at 200 nodes).

"While the original version of BIT1's serial output functioned well for
runs using up to 20,000 MPI Processes, larger simulations presented
challenges" (§II) — this writer *is* that output path, faithfully slow.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.fs.payload import RealPayload, SyntheticPayload
from repro.fs.posix import PosixIO
from repro.fs.stdio import DEFAULT_BUFSIZE, StdioFile
from repro.mpi.comm import VirtualComm

class CorruptCheckpointError(RuntimeError):
    """A .dmp file failed its checksum during restart.

    Carries structured ``context`` (path, rank, step, species,
    expected/actual checksum) so restart orchestration can report the
    damaged file precisely.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 rank: int | None = None, step: int | None = None,
                 species: str | None = None, expected: int | None = None,
                 actual: int | None = None):
        super().__init__(message)
        self.context = {"path": path, "rank": rank, "step": step,
                        "species": species, "expected": expected,
                        "actual": actual}


#: the global (rank-0) files of a BIT1 run
GLOBAL_FILES = (
    "input.echo",      # the input deck as parsed
    "run.log",         # progress log
    "history.dat",     # total particle number time history
    "fluxes.dat",      # wall particle/power fluxes
    "energy.dat",      # energy accounting
    "restart.info",    # which .dmp set is current
)


class OriginalIOWriter:
    """The original BIT1 output path (functional, small-scale)."""

    def __init__(self, posix: PosixIO, comm: VirtualComm, outdir: str,
                 prefix: str = "bit1", bufsize: int = DEFAULT_BUFSIZE,
                 fsync_checkpoints: bool = True):
        self.posix = posix
        self.comm = comm
        self.outdir = outdir.rstrip("/")
        self.prefix = prefix
        self.bufsize = bufsize
        self.fsync_checkpoints = fsync_checkpoints
        if not posix.exists(self.outdir):
            posix.mkdir(0, self.outdir, parents=True)
        self._globals: dict[str, StdioFile] = {}
        self._events = 0

    # -- paths ---------------------------------------------------------------

    def dat_path(self, rank: int) -> str:
        return f"{self.outdir}/{self.prefix}_r{rank:05d}.dat"

    def dmp_path(self, rank: int) -> str:
        return f"{self.outdir}/{self.prefix}_r{rank:05d}.dmp"

    def _global(self, name: str) -> StdioFile:
        f = self._globals.get(name)
        if f is None:
            f = StdioFile(self.posix, 0, f"{self.outdir}/{name}", "w",
                          bufsize=self.bufsize)
            self._globals[name] = f
        return f

    # -- diagnostics (.dat every `datfile` steps) --------------------------------

    def write_diagnostics(self, sim, step: int) -> None:
        """Append formatted diagnostic tables, one file per rank."""
        profiles = sim.diagnostics.profiles()
        dists = sim.diagnostics.snapshot(reset=True)
        nranks = self.comm.size
        with self.posix.phase(writers=nranks, md_clients=nranks):
            # batched fan-out: one group create for all per-rank .dat
            # files, per-rank formatted content, one group close — the
            # text each rank writes is identical to the scalar loop's
            files = StdioFile.open_group(
                self.posix, np.arange(nranks),
                [self.dat_path(r) for r in range(nranks)], "a",
                bufsize=self.bufsize)
            dist_lines = [
                (" ".join(f"{v:.6e}" for v in dist.velocity).encode() + b"\n")
                for dist in dists.values()
            ]
            for rank, f in enumerate(files):
                f.fprintf("# step %d\n", step)
                for name, per_rank in sim.particles[rank].items():
                    f.fprintf("%s count %d weight %.6e\n", name,
                              len(per_rank), per_rank.total_weight())
                for (name, dist), line in zip(dists.items(), dist_lines):
                    # averaged distribution functions, fixed-width text
                    f.fprintf("# %s velocity df (%d samples)\n",
                              name, dist.samples)
                    f.fwrite(line)
            StdioFile.fclose_group(files)
        self._write_global_logs(sim, step)
        self._events += 1

    def _write_global_logs(self, sim, step: int) -> None:
        log = self._global("run.log")
        log.fprintf("step %d complete\n", step)
        log.fflush()
        hist = self._global("history.dat")
        for name in sim.species_names():
            series = sim.history.series(name)
            if len(series):
                hist.fprintf("%d %s %.6e\n", step, name, series[-1])
        hist.fflush()
        flux = self._global("fluxes.dat")
        for name, wf in sim.walls.fluxes.items():
            flux.fprintf("%d %s %.6e %.6e %.6e %.6e\n", step, name,
                         *wf.as_row())
        flux.fflush()

    # -- checkpoints (.dmp every `dmpstep` steps) -----------------------------------

    def write_checkpoint(self, sim, step: int) -> None:
        """Dump every rank's full particle state (binary, fsynced chunks).

        The file is rewritten in place each time — ``dmpstep`` "determines
        when the simulated system's current state is saved" and only the
        latest state is kept.
        """
        nranks = self.comm.size
        with self.posix.phase(writers=nranks, md_clients=nranks):
            # group create/truncate of every .dmp, then per-rank content
            # (headers and CRC blocks are rank-specific), group close
            ranks = np.arange(nranks)
            fds = self.posix.open_group(
                ranks, [self.dmp_path(r) for r in range(nranks)],
                create=True, truncate=True, api="STDIO")
            for rank in range(nranks):
                fd = int(fds[rank])
                header = (f"BIT1 dmp step={step} rank={rank} "
                          f"nspecies={len(sim.config.species)}\n").encode()
                self.posix.write(rank, fd, RealPayload(header, "ascii_table"))
                state = sim.state_arrays(rank)
                for name in sorted(state):
                    arrays = state[name]
                    n = len(arrays["x"])
                    block = np.stack([
                        arrays["x"], arrays["vx"], arrays["vy"], arrays["vz"],
                        arrays["weight"],
                    ]).astype(np.float64) if n else np.zeros((5, 0))
                    crc = zlib.crc32(block.tobytes())
                    block_header = (f"species={name} n={n} "
                                    f"crc={crc}\n").encode()
                    self.posix.write(
                        rank, fd, RealPayload(block_header, "ascii_table"))
                    if n == 0:
                        continue
                    self.posix.write(
                        rank, fd, RealPayload(block, "particle_float32"),
                        chunk_size=self.bufsize,
                        sync_each_chunk=self.fsync_checkpoints,
                    )
            self.posix.close_group(ranks, fds, api="STDIO")
        info = self._global("restart.info")
        info.fprintf("last_dmp_step = %d\n", step)
        info.fflush()

    def read_checkpoint(self, sim, rank: int) -> dict:
        """Load one rank's .dmp back (restart support)."""
        fd = self.posix.open(rank, self.dmp_path(rank), api="STDIO")
        ino = self.posix._fds[fd].ino
        size = self.posix.fs.vfs.size_of(ino)
        blob = self.posix.read(rank, fd, size)
        self.posix.close(rank, fd)
        pos = blob.index(b"\n") + 1
        header = blob[: pos - 1].decode()
        fields = dict(kv.split("=") for kv in header.split()[2:])
        nspecies = int(fields["nspecies"])
        out: dict[str, dict[str, np.ndarray]] = {}
        for _ in range(nspecies):
            nl = blob.index(b"\n", pos)
            block_header = blob[pos:nl].decode()
            pos = nl + 1
            kv = dict(part.split("=") for part in block_header.split())
            name, n = kv["species"], int(kv["n"])
            nbytes = 5 * n * 8
            body = blob[pos:pos + nbytes]
            expected_crc = int(kv.get("crc", "0"))
            if expected_crc and zlib.crc32(body) != expected_crc:
                raise CorruptCheckpointError(
                    f"rank {rank} .dmp species {name!r}: checksum mismatch "
                    f"— the checkpoint is corrupt, restart refused",
                    path=self.dmp_path(rank), rank=rank,
                    step=int(fields.get("step", 0)), species=name,
                    expected=expected_crc, actual=zlib.crc32(body))
            data = np.frombuffer(body, dtype=np.float64)
            pos += nbytes
            rows = data.reshape(5, n) if n else np.zeros((5, 0))
            out[name] = {"x": rows[0], "vx": rows[1], "vy": rows[2],
                         "vz": rows[3], "weight": rows[4]}
        return out

    # -- lifecycle ------------------------------------------------------------------------

    def abandon(self) -> None:
        """Drop the writer as a crashed job would: no flush, no close I/O."""
        for f in self._globals.values():
            f.abandon()
        self._globals.clear()

    def finalize(self, sim) -> None:
        echo = self._global("input.echo")
        echo.fwrite(sim.config.to_input_file().encode())
        energy = self._global("energy.dat")
        for name, parts in sim.merged_species().items():
            energy.fprintf("%s kinetic_energy %.6e\n", name,
                           parts.kinetic_energy())
        for f in self._globals.values():
            f.fclose()
        self._globals.clear()
