"""The openPMD I/O adaptor for BIT1 — the paper's core contribution.

Implements §III-A/B: BIT1's state flows through the openPMD-api into the
ADIOS2 BP4 engine.  Two series are produced per run (mirroring the
original output's split, and Table II's file census):

* ``<prefix>_dat.bp4`` — time-dependent diagnostics, one iteration per
  snapshot, default aggregation (one subfile per node);
* ``<prefix>_dmp.bp4`` — the checkpoint series: particle phase space and
  grid state written into **iteration 0, overwritten in place** each
  ``dmpstep`` ("iteration 0 is chosen to record data that is
  periodically overwritten, such as the latest system state for
  simulation continuation"), through a single shared subfile.

The write procedure follows the paper verbatim: each rank builds local
vectors, obtains its offset in the global extent from MPI (exscan), calls
``storeChunk`` (data immutable until flush), and the iteration close
flushes everything "in a single action for optimal I/O efficiency".
"""

from __future__ import annotations

import numpy as np

from repro.fs.posix import PosixIO
from repro.io_adaptor.naming import species_path
from repro.mpi.comm import VirtualComm
from repro.openpmd.config import parse_options
from repro.openpmd.record import Dataset
from repro.openpmd.series import Access, Series


class Bit1OpenPMDWriter:
    """openPMD + ADIOS2 output path for BIT1 (functional mode)."""

    def __init__(self, posix: PosixIO, comm: VirtualComm, outdir: str,
                 prefix: str = "bit1",
                 options: str | dict | None = None,
                 env: dict | None = None,
                 engine_ext: str = ".bp4"):
        self.posix = posix
        self.comm = comm
        self.outdir = outdir.rstrip("/")
        self.prefix = prefix
        if not posix.exists(self.outdir):
            posix.mkdir(0, self.outdir, parents=True)
        self.options = parse_options(options, env)
        self.diag_series = Series(
            posix, comm, f"{self.outdir}/{prefix}_dat{engine_ext}",
            Access.CREATE, options=options, env=env)
        # the checkpoint series writes one shared subfile unless the user
        # pinned an explicit aggregator count (the "+ 1 AGGR" and Lustre
        # striping studies do) — this is the layout behind Table II's
        # constant-size checkpoint file
        ckpt_options = dict(self.options.raw)
        if self.options.num_aggregators is None:
            ckpt_options.setdefault("adios2", {}).setdefault(
                "engine", {}).setdefault("parameters", {})[
                "NumAggregators"] = 1
        self.ckpt_series = Series(
            posix, comm, f"{self.outdir}/{prefix}_dmp{engine_ext}",
            Access.CREATE, options=ckpt_options, env=env)
        self._snapshots = 0

    # -- diagnostics ------------------------------------------------------------

    def write_diagnostics(self, sim, step: int) -> None:
        """One iteration per snapshot: profiles + distribution functions."""
        with self.posix.trace.step(step):
            self._write_diagnostics(sim, step)
        self._snapshots += 1

    def _write_diagnostics(self, sim, step: int) -> None:
        it = self.diag_series.iterations[step]
        it.set_time(step * sim.config.dt, sim.config.dt)
        # profiles must be taken before snapshot() resets the accumulators
        profiles = sim.diagnostics.profiles()
        dists = sim.diagnostics.snapshot(reset=True)
        nnodes = sim.grid.nnodes
        nranks = self.comm.size

        for name, dist in dists.items():
            sp = species_path(name)
            nbins = len(dist.velocity)
            for kind, values in (("dfv", dist.velocity),
                                 ("dfe", dist.energy),
                                 ("dfa", dist.angular)):
                mesh = it.meshes[f"{sp}_{kind}"]
                comp = mesh.scalar
                comp.entropy = "diagnostic_float64"
                comp.reset_dataset(Dataset(np.float64, (nbins,)))
                # the averaged DF is global; rank 0 stores it
                comp.store_chunk(values.astype(np.float64), (0,), rank=0)

        for name, profile in profiles.items():
            sp = species_path(name)
            mesh = it.meshes[f"{sp}_density"]
            mesh.set_grid([sim.grid.dx])
            comp = mesh.scalar
            comp.entropy = "diagnostic_float64"
            comp.reset_dataset(Dataset(np.float64, (nnodes,)))
            comp.store_chunk(profile.astype(np.float64), (0,), rank=0)

        # per-rank summary rows (counts + kinetic energy per species):
        # every rank contributes its local extent at its exscan offset —
        # the §III-B procedure
        names = sim.species_names()
        row_len = 2 * len(names)
        summary = it.meshes["rank_summary"]
        comp = summary.scalar
        comp.entropy = "diagnostic_float64"
        comp.reset_dataset(Dataset(np.float64, (nranks * row_len,)))
        local_lens = [row_len] * nranks
        offsets = self.comm.exscan_sum(local_lens)
        # build all rows as one (nranks, row_len) matrix and stage each
        # row in a single batched call — the columns come from per-rank
        # Python objects, but only one pass over them per species
        rows = np.empty((nranks, row_len), dtype=np.float64)
        for j, name in enumerate(names):
            parts = [sim.particles[r][name] for r in range(nranks)]
            rows[:, 2 * j] = [float(len(p)) for p in parts]
            rows[:, 2 * j + 1] = [p.kinetic_energy() for p in parts]
        comp.store_chunks(list(rows), offsets, np.arange(nranks))
        it.close()

    # -- checkpoints -------------------------------------------------------------------

    def write_checkpoint(self, sim, step: int) -> None:
        """Overwrite iteration 0 with the complete system state."""
        with self.posix.trace.step(step):
            self._write_checkpoint(sim, step)

    def _write_checkpoint(self, sim, step: int) -> None:
        it = self.ckpt_series.iterations[0].reopen()
        it.set_time(step * sim.config.dt, sim.config.dt)
        it.attributes["checkpointStep"] = step
        nranks = self.comm.size
        for name in sim.species_names():
            sp = species_path(name)
            # one pass over the per-rank particle stores: counts, array
            # views and offsets are gathered once and reused by all five
            # records instead of re-walking the rank dict per record
            arrays_by_rank = [sim.particles[r][name] for r in range(nranks)]
            counts = np.fromiter((len(a) for a in arrays_by_rank),
                                 dtype=np.int64, count=nranks)
            total = int(counts.sum())
            offsets = self.comm.exscan_sum(counts)
            active = np.nonzero(counts)[0]
            species = it.particles[sp]
            records = {
                ("position", "x"): "x",
                ("momentum", "x"): "vx",
                ("momentum", "y"): "vy",
                ("momentum", "z"): "vz",
                ("weighting", None): "weight",
            }
            for (rec_name, comp_name), field in records.items():
                rec = species[rec_name]
                comp = rec.scalar if comp_name is None else rec[comp_name]
                comp.reset_dataset(Dataset(np.float64, (max(total, 0),)))
                datas = [
                    getattr(arrays_by_rank[r], field)[:counts[r]]
                    .astype(np.float64)
                    for r in active.tolist()
                ]
                comp.store_chunks(datas, offsets[active], active)
        # grid-state moments (the solver/smoother restart state)
        dens = it.meshes["charge_density"]
        comp = dens.scalar
        comp.reset_dataset(Dataset(np.float64, (sim.grid.nnodes,)))
        from repro.pic.deposit import deposit_charge

        rho = np.zeros(sim.grid.nnodes)
        for per_rank in sim.particles:
            rho += deposit_charge(sim.grid, list(per_rank.values()))
        comp.store_chunk(rho, (0,), rank=0)
        it.close()

    # -- lifecycle -----------------------------------------------------------------------

    def abandon(self) -> None:
        """Drop both series as a crashed job would (no closing I/O)."""
        self.diag_series.abandon()
        self.ckpt_series.abandon()

    def handle_rank_failure(self, dead_ranks) -> None:
        """Fail dead aggregator ranks over in both series' engines."""
        self.diag_series.handle_rank_failure(dead_ranks)
        self.ckpt_series.handle_rank_failure(dead_ranks)

    def finalize(self, sim) -> None:
        self.diag_series.close()
        self.ckpt_series.close()

    @property
    def snapshots_written(self) -> int:
        return self._snapshots
