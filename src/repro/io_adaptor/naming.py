"""The openPMD naming schema for BIT1 quantities.

One of the paper's contributions is the "critical discussion of how the
usage of a standard for naming schema can benefit a plasma simulation
application" (§I).  BIT1's original output names are positional columns
in ad-hoc ``.dat`` tables; this module pins each physical quantity to
its openPMD location so any openPMD-aware tool can consume BIT1 output.
"""

from __future__ import annotations

from dataclasses import dataclass

#: BIT1 species → openPMD species names (kept verbatim; openPMD imposes
#: no species-name vocabulary, only a layout)
SPECIES_NAMES = {"e": "e", "D+": "D_plus", "D": "D"}


@dataclass(frozen=True)
class QuantityMapping:
    """Where one BIT1 quantity lives in the openPMD hierarchy."""

    bit1_name: str
    category: str           # "meshes" or "particles"
    record: str
    component: str | None
    unit_dimension: dict[str, float]
    unit_si: float


#: the mapping table (§III-A's dedicated conversion functions)
MAPPINGS: tuple[QuantityMapping, ...] = (
    QuantityMapping("density profile", "meshes", "density", None,
                    {"L": -3.0}, 1.0),
    QuantityMapping("potential", "meshes", "phi", None,
                    {"L": 2.0, "M": 1.0, "T": -3.0, "I": -1.0}, 1.0),
    QuantityMapping("electric field", "meshes", "E", "x",
                    {"L": 1.0, "M": 1.0, "T": -3.0, "I": -1.0}, 1.0),
    QuantityMapping("particle position", "particles", "position", "x",
                    {"L": 1.0}, 1.0),
    QuantityMapping("particle velocity vx", "particles", "momentum", "x",
                    {"L": 1.0, "M": 1.0, "T": -1.0}, 1.0),
    QuantityMapping("particle velocity vy", "particles", "momentum", "y",
                    {"L": 1.0, "M": 1.0, "T": -1.0}, 1.0),
    QuantityMapping("particle velocity vz", "particles", "momentum", "z",
                    {"L": 1.0, "M": 1.0, "T": -1.0}, 1.0),
    QuantityMapping("particle weight", "particles", "weighting", None,
                    {}, 1.0),
    QuantityMapping("velocity distribution", "meshes", "dfv", None,
                    {}, 1.0),
    QuantityMapping("energy distribution", "meshes", "dfe", None,
                    {}, 1.0),
    QuantityMapping("angular distribution", "meshes", "dfa", None,
                    {}, 1.0),
)


def species_path(bit1_species: str) -> str:
    """openPMD-safe species name for a BIT1 species."""
    if bit1_species not in SPECIES_NAMES:
        raise KeyError(
            f"unknown BIT1 species {bit1_species!r}; "
            f"known: {sorted(SPECIES_NAMES)}"
        )
    return SPECIES_NAMES[bit1_species]


def mapping_for(bit1_name: str) -> QuantityMapping:
    for m in MAPPINGS:
        if m.bit1_name == bit1_name:
            return m
    raise KeyError(f"no openPMD mapping for BIT1 quantity {bit1_name!r}")
