"""BIT1 I/O strategies: the original stdio path and the openPMD adaptor."""

from repro.io_adaptor.checkpoint import restore_from_openpmd, restore_from_original
from repro.io_adaptor.naming import MAPPINGS, SPECIES_NAMES, mapping_for, species_path
from repro.io_adaptor.openpmd_adaptor import Bit1OpenPMDWriter
from repro.io_adaptor.original import CorruptCheckpointError, GLOBAL_FILES, OriginalIOWriter

__all__ = [
    "Bit1OpenPMDWriter",
    "CorruptCheckpointError",
    "GLOBAL_FILES",
    "MAPPINGS",
    "OriginalIOWriter",
    "SPECIES_NAMES",
    "mapping_for",
    "restore_from_openpmd",
    "restore_from_original",
    "species_path",
]
