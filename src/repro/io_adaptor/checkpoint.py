"""Checkpoint/restart support (§III-B: "robust checkpointing and
restoration mechanisms").

Restores a :class:`~repro.pic.simulation.Bit1Simulation` from either
output format:

* the openPMD checkpoint series (``*_dmp.bp4`` iteration 0) — global
  arrays are re-split over the current communicator by position, so
  restarting on a different rank count works;
* the original per-rank ``.dmp`` files — same decomposition as the
  writing run.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.fs.posix import PosixIO
from repro.io_adaptor.naming import species_path
from repro.io_adaptor.original import OriginalIOWriter
from repro.mpi.comm import VirtualComm
from repro.openpmd.series import Access, Series


def serialize_node_state(sim, ranks) -> bytes:
    """One node's checkpoint shard: every resident rank's phase space.

    The byte representation is deterministic for identical state (numpy
    arrays pickle by buffer), so shard CRCs and XOR parity are stable —
    the property the resilience plane's bit-identity contract rests on.
    """
    return pickle.dumps(
        {int(r): sim.state_arrays(int(r)) for r in ranks}, protocol=4)


def apply_node_state(sim, blob: bytes) -> None:
    """Restore the ranks recorded in one shard (inverse of serialize)."""
    for rank, state in pickle.loads(blob).items():
        sim.restore_state(rank, state)


def restore_from_openpmd(sim, posix: PosixIO, comm: VirtualComm,
                         path: str) -> int:
    """Load iteration 0 of a checkpoint series into ``sim``.

    Returns the checkpoint's step number (0 if not recorded).  Particles
    are re-assigned to ranks by position, so the restart communicator may
    differ from the writer's.
    """
    from repro.fs.vfs import FileNotFound

    try:
        series = Series(posix, comm, path, Access.READ_ONLY)
    except FileNotFound as exc:
        raise ValueError(
            f"{path} holds no checkpoint series (never flushed?)") from exc
    iterations = series.read_iterations()
    if 0 not in iterations:
        raise ValueError(f"{path} holds no iteration 0 checkpoint")
    for name in sim.species_names():
        sp = species_path(name)
        try:
            x = series.load_particles(0, sp, "position", "x")
        except KeyError:
            continue
        vx = series.load_particles(0, sp, "momentum", "x")
        vy = series.load_particles(0, sp, "momentum", "y")
        vz = series.load_particles(0, sp, "momentum", "z")
        w = series.load_particles(0, sp, "weighting")
        starts = np.array([s.x_min for s in sim.subdomains])
        dest = np.clip(np.searchsorted(starts, x, side="right") - 1,
                       0, comm.size - 1)
        # one stable sort splits every rank's particles at once (file
        # order within each rank is preserved, exactly like the former
        # per-rank boolean masks — but without comm.size full scans)
        order = np.argsort(dest, kind="stable")
        bounds = np.searchsorted(dest[order], np.arange(comm.size + 1))
        xs, vxs, vys, vzs, ws = (a[order] for a in (x, vx, vy, vz, w))
        for rank in range(comm.size):
            lo, hi = int(bounds[rank]), int(bounds[rank + 1])
            arrays = sim.particles[rank][name]
            arrays.remove(np.ones(len(arrays), dtype=bool))
            if hi > lo:
                arrays.add(xs[lo:hi], vxs[lo:hi], vys[lo:hi], vzs[lo:hi],
                           ws[lo:hi])
    step = int(getattr(series.engine, "attributes", {}).get(
        "/data/0/checkpointStep", 0))
    series.close()
    return step


def restore_from_original(sim, writer: OriginalIOWriter) -> None:
    """Load every rank's ``.dmp`` back into ``sim`` (same rank count)."""
    for rank in range(writer.comm.size):
        state = writer.read_checkpoint(sim, rank)
        sim.restore_state(rank, state)
